//! Exploratory harness: PDAT scalability on the 100k-gate RIDECORE-class
//! core (paper Fig. 7).

use pdat::{run_pdat, ConstraintMode, Environment, PdatConfig};
use pdat_cores::build_ridecore;
use pdat_isa::RvSubset;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("im");
    let core = build_ridecore();
    println!("input: {}", core.netlist.stats());
    // RIDECORE implements RV32I + multiplies: its "full ISA".
    let subset = match which {
        "im" => {
            let mut s = RvSubset::rv32im();
            s.instrs.retain(|i| {
                !matches!(
                    i,
                    pdat_isa::rv32::RvInstr::Div
                        | pdat_isa::rv32::RvInstr::Divu
                        | pdat_isa::rv32::RvInstr::Rem
                        | pdat_isa::rv32::RvInstr::Remu
                )
            });
            s.name = "RIDECORE ISA".into();
            s
        }
        "i" => RvSubset::rv32i(),
        "e" => RvSubset::rv32e(),
        _ => RvSubset::rv32i(),
    };
    let config = PdatConfig {
        sim_cycles: 192,
        ..Default::default()
    };
    let t = Instant::now();
    let res = run_pdat(
        &core.netlist,
        &Environment::Rv {
            subset: &subset,
            ports: vec![core.instr_in[0].clone(), core.instr_in[1].clone()],
            mode: ConstraintMode::PortBased,
        },
        &config,
    ).expect("pdat run");
    println!(
        "{}: cands={} surv={} proved={} | gates {} -> {} ({:+.1}%) | {:.0}s (sim {:.0}s prove {:.0}s synth {:.0}s)",
        subset.name,
        res.candidates,
        res.sim_survivors,
        res.proved,
        res.baseline.gate_count,
        res.optimized.gate_count,
        -100.0 * res.gate_reduction(),
        t.elapsed().as_secs_f64(),
        res.stage_times.0.as_secs_f64(),
        res.stage_times.1.as_secs_f64(),
        res.stage_times.2.as_secs_f64(),
    );
}
