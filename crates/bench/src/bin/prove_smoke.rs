//! Prover smoke run for CI (tier-1).
//!
//! Drives the full PDAT pipeline on the keyed-design fixture through the
//! *governed, sharded* prover — 2 worker threads, one candidate per shard
//! — and checks the result against a golden proved-invariant list, once
//! per encoding path: the default cone-of-influence + CNF-preprocessing
//! prover and the eager full-frame encoding. This pins four contracts at
//! once:
//!
//! - the parallel prover is live and converges on a multi-shard fixpoint
//!   (the key invariant needs mutual induction across shard boundaries);
//! - an armed-but-untripped governor does not perturb the result (no
//!   degradation events);
//! - the proved list is exactly the golden set, in candidate order — any
//!   unsound over-proving (or lost invariant) fails the gate;
//! - the COI path proves the bit-identical set the full encoding proves.
//!
//! Exits nonzero on any violation.

use pdat::{
    run_pdat_governed, Environment, Governor, GovernorConfig, PdatConfig, ProveConfig,
};
use pdat_mc::CandidateKind;
use pdat_netlist::{CellKind, Netlist};
use std::time::Duration;

fn keyed_design() -> Netlist {
    let mut nl = Netlist::new("locked");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let fb = nl.add_net("fb");
    let key = nl.add_dff(fb, true, "key");
    nl.assign_alias(fb, key);
    let t = nl.add_cell(CellKind::And2, &[a, b], "t");
    let decoy = nl.add_cell(CellKind::Xor2, &[a, b], "decoy");
    let out = nl.add_cell(CellKind::Mux2, &[decoy, t, key], "out");
    nl.add_output("y", out);
    nl
}

/// Run one encoding path against the golden list; returns the number of
/// failed checks.
fn run_path(nl: &Netlist, label: &str, coi: bool, preprocess: bool) -> usize {
    let config = PdatConfig {
        sim_cycles: 64,
        conflict_budget: Some(40_000),
        max_iterations: 1_000,
        seed: 0x5A0E,
        prove: ProveConfig {
            threads: 2,
            shard_size: 1, // one candidate per shard: worst-case split
            coi,
            preprocess,
            ..Default::default()
        },
        ..Default::default()
    };
    // Armed but untripped: every governor check site runs its full path.
    let governor = Governor::new(&GovernorConfig {
        deadline: Some(Duration::from_secs(86_400)),
        conflict_budget: Some(u64::MAX / 2),
        cycle_budget: Some(u64::MAX / 2),
        ..Default::default()
    });
    let res = run_pdat_governed(nl, &Environment::Unconstrained, &[], &config, &governor)
        .expect("prove smoke: pipeline run failed");

    let mut failures = 0usize;
    if !res.degradations.is_empty() {
        eprintln!(
            "FAIL[{label}]: untripped governor produced degradations: {:?}",
            res.degradations
        );
        failures += 1;
    }
    let shards = res.houdini_stats.shard_stats.len();
    if shards < 2 {
        eprintln!("FAIL[{label}]: expected a multi-shard prove, got {shards} shard(s)");
        failures += 1;
    }
    let proved: Vec<(String, CandidateKind)> = res
        .proved_invariants
        .iter()
        .map(|c| (nl.net(c.net).name.clone(), c.kind))
        .collect();
    // Golden set: the key latch is stuck high, and with the key proved
    // the output mux always selects the real function `t`.
    let t = nl.find_net("t").expect("fixture net");
    let golden: Vec<(String, CandidateKind)> = vec![
        ("key".to_string(), CandidateKind::ConstTrue),
        ("out".to_string(), CandidateKind::EqualNet(t)),
    ];
    if proved != golden {
        eprintln!("FAIL[{label}]: proved list diverged from golden");
        eprintln!("  golden: {golden:?}");
        eprintln!("  proved: {proved:?}");
        failures += 1;
    }
    println!(
        "prove smoke [{label}]: {} invariant(s) proved across {} shards in {} rounds, {} solves",
        proved.len(),
        shards,
        res.houdini_stats.rounds,
        res.houdini_stats.iterations,
    );
    failures
}

fn main() {
    let nl = keyed_design();
    // Both encoding paths must hit the same golden list: the default COI +
    // preprocessing prover and the eager full-frame encoding it replaced.
    let mut failures = run_path(&nl, "coi+preprocess", true, true);
    failures += run_path(&nl, "full-encoding", false, false);
    if failures > 0 {
        eprintln!("prove smoke: {failures} check(s) failed");
        std::process::exit(1);
    }
    println!("prove smoke: OK");
}
