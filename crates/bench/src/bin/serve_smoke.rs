//! Service smoke run for CI (tier-1).
//!
//! Boots [`PdatService`] on the detector fixture and pushes ~50 seeded
//! requests through it across four rounds, each round armed with a
//! different [`FaultPlan`] (worker panic, deadline fuse, interrupted
//! checkpoint, clean), checking the service soundness contract on every
//! reply:
//!
//! - a `Done` reply is bit-identical to the unfaulted cold oracle for
//!   that subset — faults may delay an answer, never change it;
//! - a malformed request answers `Rejected`, and nothing else does;
//! - the worker pool survives injected panics (respawn counted);
//! - the cache snapshot on disk reloads cleanly (or is absent) after
//!   every round — an interrupted checkpoint never corrupts it.
//!
//! Exits nonzero on any violation.

use pdat::{
    load_cache_or_quarantine, run_pdat_cached, CandidateId, ConstraintMode, Environment,
    FaultPlan, LoadOutcome, PdatConfig, ProofCache,
};
use pdat_isa::rv32::RvInstr;
use pdat_isa::RvSubset;
use pdat_netlist::{CellKind, NetId, Netlist};
use pdat_serve::{OwnedEnvironment, PdatService, Reply, ServeConfig, ServeRequest};
use std::time::Duration;

/// Exact-pattern detectors + sticky latches for three instructions on a
/// 32-bit instruction port (the `cache_smoke` fixture), plus one internal
/// net for building a deliberately malformed request.
fn detector_core() -> (Netlist, Vec<NetId>, NetId) {
    let mut nl = Netlist::new("rvdet");
    let port: Vec<NetId> = (0..32).map(|b| nl.add_input(&format!("i{b}"))).collect();
    let mut internal = port[0];
    for instr in [RvInstr::Add, RvInstr::Sub, RvInstr::Jalr] {
        let p = instr.pattern();
        let tag = format!("{instr:?}").to_lowercase();
        let mut acc: Option<NetId> = None;
        for b in 0..32 {
            if p.mask >> b & 1 == 0 {
                continue;
            }
            let bit = if p.value >> b & 1 == 1 {
                port[b]
            } else {
                nl.add_cell(CellKind::Inv, &[port[b]], &format!("{tag}_n{b}"))
            };
            acc = Some(match acc {
                None => bit,
                Some(a) => nl.add_cell(CellKind::And2, &[a, bit], &format!("{tag}_a{b}")),
            });
        }
        let det = acc.expect("pattern has masked bits");
        let fb = nl.add_net(&format!("{tag}_fb"));
        let q = nl.add_dff(fb, false, &format!("{tag}_seen"));
        let sticky = nl.add_cell(CellKind::Or2, &[q, det], &format!("{tag}_sticky"));
        nl.assign_alias(fb, sticky);
        nl.add_output(&format!("saw_{tag}"), sticky);
        internal = sticky;
    }
    (nl, port, internal)
}

fn config() -> PdatConfig {
    PdatConfig {
        sim_cycles: 64,
        conflict_budget: Some(40_000),
        max_iterations: 1_000,
        seed: 0x5EB5,
        ..Default::default()
    }
}

fn subset(name: &str, remove: &[RvInstr]) -> RvSubset {
    let mut s = RvSubset::rv32i();
    for i in remove {
        s.instrs.remove(i);
    }
    s.name = name.to_string();
    s
}

fn request(s: &RvSubset, port: &[NetId]) -> ServeRequest {
    ServeRequest {
        env: OwnedEnvironment::Rv {
            subset: s.clone(),
            ports: vec![port.to_vec()],
            mode: ConstraintMode::PortBased,
        },
        extras: Vec::new(),
    }
}

/// A request whose constraint nets are not free analysis variables —
/// must answer `Rejected(UnboundConstraintNet)`, never sink the pool.
fn malformed_request(internal: NetId) -> ServeRequest {
    ServeRequest {
        env: OwnedEnvironment::Rv {
            subset: RvSubset::rv32i(),
            ports: vec![vec![internal; 32]],
            mode: ConstraintMode::PortBased,
        },
        extras: Vec::new(),
    }
}

/// Pick deterministic fault seeds covering each service arm, plus one
/// clean round (ordered so a clean final save precedes a loaded boot).
fn round_plans() -> Vec<(String, FaultPlan)> {
    let mut io = None;
    let mut panic_arm = None;
    let mut fuse = None;
    for seed in 0..256u64 {
        let p = FaultPlan::from_seed(seed);
        if io.is_none() && p.io_fail_after_writes.is_some() {
            io = Some((format!("seed {seed} (io)"), p));
        } else if panic_arm.is_none() && p.worker_panic_on_request.is_some() {
            panic_arm = Some((format!("seed {seed} (panic)"), p));
        } else if fuse.is_none() && p.deadline_fuse.is_some() {
            fuse = Some((format!("seed {seed} (fuse)"), p));
        }
        if io.is_some() && panic_arm.is_some() && fuse.is_some() {
            break;
        }
    }
    let mut rounds: Vec<(String, FaultPlan)> =
        [io, panic_arm, fuse].into_iter().flatten().collect();
    rounds.push(("clean".to_string(), FaultPlan::default()));
    rounds
}

fn main() {
    let (nl, port, internal) = detector_core();
    let subsets = [
        subset("full", &[]),
        subset("no-add", &[RvInstr::Add]),
        subset("no-addsub", &[RvInstr::Add, RvInstr::Sub]),
        subset("no-jalr", &[RvInstr::Jalr]),
    ];

    // Cold, unfaulted oracle per subset: the answer every Done reply
    // must reproduce bit-for-bit.
    let oracles: Vec<Vec<CandidateId>> = subsets
        .iter()
        .map(|s| {
            let env = Environment::Rv {
                subset: s,
                ports: vec![port.to_vec()],
                mode: ConstraintMode::PortBased,
            };
            run_pdat_cached(&nl, &env, &[], &config(), &ProofCache::new())
                .expect("oracle run")
                .proved
        })
        .collect();
    assert!(
        oracles[2].len() > oracles[0].len(),
        "fixture must be subset-sensitive"
    );

    let dir = std::env::temp_dir().join(format!("pdat_serve_smoke_{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    let cache_path = dir.join("serve_cache.txt");

    // Injected worker panics are expected; keep the log readable.
    std::panic::set_hook(Box::new(|_| {}));

    let mut failures = 0usize;
    let mut total_requests = 0usize;
    let mut total_done = 0u64;
    let mut total_panics = 0u64;
    let mut total_respawned = 0u64;
    let mut total_retries = 0u64;
    let mut total_checkpoints_ok = 0u64;
    let mut any_warm_boot = false;

    let rounds = round_plans();
    const PER_ROUND: usize = 13;
    const MALFORMED_AT: usize = 6;
    for (label, plan) in &rounds {
        let service = match PdatService::start(
            nl.clone(),
            ServeConfig {
                workers: 3,
                queue_depth: 64,
                retry_cap: 2,
                backoff_base: Duration::from_micros(200),
                cache_path: Some(cache_path.clone()),
                checkpoint_every: Some(Duration::from_millis(25)),
                fault_plan: plan.clone(),
                pdat: config(),
                ..Default::default()
            },
        ) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("FAIL: round {label}: service did not boot: {e}");
                failures += 1;
                continue;
            }
        };
        let boot = service.stats();
        if boot.cache_quarantined {
            eprintln!("FAIL: round {label}: boot quarantined a snapshot written by a clean save");
            failures += 1;
        }
        any_warm_boot |= boot.cache_entries_loaded > 0;

        let mut tickets = Vec::new();
        for i in 0..PER_ROUND {
            let req = if i == MALFORMED_AT {
                malformed_request(internal)
            } else {
                request(&subsets[i % subsets.len()], &port)
            };
            match service.submit(req) {
                Ok(t) => tickets.push((i, t)),
                Err(e) => {
                    eprintln!("FAIL: round {label}: request {i} refused admission: {e}");
                    failures += 1;
                }
            }
        }
        total_requests += PER_ROUND;

        for (i, ticket) in tickets {
            match ticket.wait() {
                Reply::Done(report) => {
                    if i == MALFORMED_AT {
                        eprintln!("FAIL: round {label}: malformed request {i} answered Done");
                        failures += 1;
                    } else if report.proved != oracles[i % subsets.len()] {
                        eprintln!(
                            "FAIL: round {label}: request {i} diverged from its oracle \
                             ({} vs {} proved)",
                            report.proved.len(),
                            oracles[i % subsets.len()].len()
                        );
                        failures += 1;
                    } else {
                        total_done += 1;
                    }
                }
                Reply::Rejected(e) => {
                    if i != MALFORMED_AT {
                        eprintln!("FAIL: round {label}: well-formed request {i} rejected: {e}");
                        failures += 1;
                    }
                }
                Reply::Exhausted {
                    attempts,
                    last_cause,
                } => {
                    // Fault arms fire on first attempts only, so with a
                    // retry in hand every request must complete.
                    eprintln!(
                        "FAIL: round {label}: request {i} exhausted after {attempts} \
                         attempt(s) ({last_cause})"
                    );
                    failures += 1;
                }
                Reply::ShutDown => {
                    eprintln!("FAIL: round {label}: request {i} answered ShutDown while serving");
                    failures += 1;
                }
            }
        }

        let stats = service.shutdown();
        total_panics += stats.worker_panics;
        total_respawned += stats.workers_respawned;
        total_retries += stats.retries;
        total_checkpoints_ok += stats.checkpoints_ok;

        // Whatever the fault plan did to checkpoints, the snapshot on
        // disk must reload cleanly or be absent — never quarantined.
        match load_cache_or_quarantine(&ProofCache::new(), &cache_path) {
            Ok(LoadOutcome::Quarantined { .. }) => {
                eprintln!("FAIL: round {label}: snapshot corrupted by an interrupted save");
                failures += 1;
            }
            Ok(_) => {}
            Err(e) => {
                eprintln!("FAIL: round {label}: snapshot unreadable: {e}");
                failures += 1;
            }
        }
    }
    let _ = std::panic::take_hook();

    let mut check = |ok: bool, what: &str| {
        if ok {
            println!("  ok: {what}");
        } else {
            eprintln!("  FAIL: {what}");
            failures += 1;
        }
    };
    check(total_panics >= 1, "a worker panic was injected and caught");
    check(total_respawned >= 1, "the supervisor respawned a worker");
    check(total_retries >= 1, "a faulted attempt was retried");
    check(total_checkpoints_ok >= 1, "at least one checkpoint saved cleanly");
    check(any_warm_boot, "a later round booted warm off a saved snapshot");

    let _ = std::fs::remove_dir_all(&dir);
    if failures > 0 {
        eprintln!("serve smoke: {failures} check(s) failed");
        std::process::exit(1);
    }
    println!(
        "serve smoke: OK — {} requests over {} rounds ({} done, {} panics caught, \
         {} respawns, {} retries)",
        total_requests,
        rounds.len(),
        total_done,
        total_panics,
        total_respawned,
        total_retries
    );
}
