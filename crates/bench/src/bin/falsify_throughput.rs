//! Falsification-throughput benchmark on the Ibex-class core under the
//! RV32I cutpoint environment. Three engines are timed:
//!
//! - `seed_style` — the pre-optimization engine (per-node enum-dispatch
//!   eval, `Vec`-allocating step, uncompacted per-candidate scan); the
//!   headline speedup is measured against this.
//! - `reference` — the naive scan on top of the levelized simulator
//!   (isolates eval speedup from compaction speedup).
//! - `parallel_tN` — the compacted multi-lane-block engine at N threads.
//!
//! All engines simulate the exact same work — identical RNG streams,
//! identical survivor sets, identical stats — so wall-time ratios are pure
//! engine speedup. Results are written to `BENCH_PR1.json` at the repo
//! root (or the path given as the first non-flag argument).
//!
//! `--smoke` runs a reduced cycle count to validate the harness quickly.

use pdat_aig::{Aig, AigLit, AigNode, AigNodeId, NetlistAig};
use pdat_bench::{ibex_rv32i_analysis, parse_bench_args};
use pdat_mc::{
    simulate_filter_reference, simulate_filter_with_stats, Candidate, CandidateKind,
    SimFilterConfig, SimFilterStats,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

struct Measurement {
    label: String,
    seconds: f64,
    stats: SimFilterStats,
    survivors: usize,
}

/// The pre-optimization AIG simulator, preserved here as the benchmark
/// baseline: per-node enum dispatch in `eval`, branching complement in
/// `lit_word`, and a fresh `Vec` allocation on every `step`.
struct LegacySim<'a> {
    aig: &'a Aig,
    values: Vec<u64>,
    state: Vec<u64>,
}

impl<'a> LegacySim<'a> {
    fn new(aig: &'a Aig) -> LegacySim<'a> {
        let state = aig
            .latches()
            .iter()
            .map(|&l| match aig.node(l) {
                AigNode::Latch { init, .. } => {
                    if init {
                        u64::MAX
                    } else {
                        0
                    }
                }
                _ => unreachable!(),
            })
            .collect();
        LegacySim {
            aig,
            values: vec![0; aig.num_nodes()],
            state,
        }
    }

    fn reset(&mut self) {
        for (i, &l) in self.aig.latches().iter().enumerate() {
            self.state[i] = match self.aig.node(l) {
                AigNode::Latch { init: true, .. } => u64::MAX,
                _ => 0,
            };
        }
    }

    fn eval(&mut self, inputs: &[u64]) {
        let mut in_idx = 0;
        let mut latch_idx = 0;
        for i in 0..self.aig.num_nodes() {
            let id = AigNodeId(i as u32);
            self.values[i] = match self.aig.node(id) {
                AigNode::Const => 0,
                AigNode::Input => {
                    let v = inputs[in_idx];
                    in_idx += 1;
                    v
                }
                AigNode::Latch { .. } => {
                    let v = self.state[latch_idx];
                    latch_idx += 1;
                    v
                }
                AigNode::And(a, b) => self.lit_word(a) & self.lit_word(b),
            };
        }
    }

    fn lit_word(&self, l: AigLit) -> u64 {
        let v = self.values[l.node().index()];
        if l.is_compl() {
            !v
        } else {
            v
        }
    }

    fn step(&mut self) {
        let next: Vec<u64> = self
            .aig
            .latches()
            .iter()
            .map(|&l| match self.aig.node(l) {
                AigNode::Latch { next, .. } => self.lit_word(next),
                _ => unreachable!(),
            })
            .collect();
        self.state = next;
    }
}

/// The engine's per-block stream derivation, mirrored so the legacy
/// baseline simulates bit-identical work (same stimulus, same kills).
fn block_seed(seed: u64, block: u64) -> u64 {
    let mut s = block.wrapping_add(0x6A09_E667_F3BC_C909);
    seed ^ rand::splitmix64(&mut s)
}

/// The pre-optimization falsification loop: legacy simulator, uncompacted
/// per-candidate `Option` scan, per-cycle stimulus `Vec` allocation — but
/// the same block/RNG/restart semantics, so survivors and stats must equal
/// the optimized engine's exactly.
fn legacy_filter(
    na: &NetlistAig,
    constraint: AigLit,
    candidates: &[Candidate],
    config: &SimFilterConfig,
    stimulus: &dyn Fn(&mut StdRng, &mut [u64]),
    seed: u64,
) -> (Vec<Candidate>, SimFilterStats) {
    #[derive(Clone, Copy)]
    enum KindLit {
        Const(bool),
        Equal(AigLit),
    }
    let aig = &na.aig;
    let n_inputs = aig.inputs().len();
    let mut stats = SimFilterStats::default();
    let resolved: Vec<Option<(AigLit, KindLit)>> = candidates
        .iter()
        .map(|c| {
            let target = na.net_lit.get(&c.net).copied()?;
            let kind = match c.kind {
                CandidateKind::ConstFalse => KindLit::Const(false),
                CandidateKind::ConstTrue => KindLit::Const(true),
                CandidateKind::EqualNet(other) => {
                    KindLit::Equal(na.net_lit.get(&other).copied()?)
                }
            };
            Some((target, kind))
        })
        .collect();
    let mut killed: Vec<bool> = resolved.iter().map(|r| r.is_none()).collect();

    for block in 0..config.lane_blocks.max(1) {
        let mut sim = LegacySim::new(aig);
        let mut rng = StdRng::seed_from_u64(block_seed(seed, block as u64));
        let mut alive: Vec<bool> = resolved.iter().map(|r| r.is_some()).collect();
        stats.lane_blocks += 1;
        let mut lane_ok = u64::MAX;
        for _cycle in 0..config.cycles {
            if !alive.iter().any(|&a| a) {
                break;
            }
            // The seed stimulus API returned a fresh Vec per cycle.
            let mut inputs = vec![0u64; n_inputs];
            stimulus(&mut rng, &mut inputs);
            sim.eval(&inputs);
            lane_ok &= sim.lit_word(constraint);
            stats.cycles += 1;
            stats.wasted_lane_cycles += u64::from(64 - lane_ok.count_ones());
            if lane_ok.count_ones() < config.restart_threshold {
                sim.reset();
                lane_ok = u64::MAX;
                stats.restarts += 1;
                continue;
            }
            for (i, r) in resolved.iter().enumerate() {
                if !alive[i] {
                    continue;
                }
                let (target, kind) = r.expect("unresolved filtered above");
                let got = sim.lit_word(target);
                let bad = match kind {
                    KindLit::Const(false) => got,
                    KindLit::Const(true) => !got,
                    KindLit::Equal(l) => got ^ sim.lit_word(l),
                };
                stats.candidate_cycles += 1;
                if bad & lane_ok != 0 {
                    alive[i] = false;
                    killed[i] = true;
                }
            }
            sim.step();
        }
    }
    stats.kills = killed.iter().filter(|&&k| k).count() as u64;
    let survivors = candidates
        .iter()
        .zip(&killed)
        .filter(|(_, &k)| !k)
        .map(|(c, _)| *c)
        .collect();
    (survivors, stats)
}

fn main() {
    let args = parse_bench_args("falsify_throughput", "BENCH_PR1.json", &["--eval-only"]);
    let (smoke, out_path) = (args.smoke, args.out_path.clone());

    let cycles = if smoke { 32 } else { 512 };
    let lane_blocks = 4;
    let seed = 0xB14C_u64;

    // Mirror the pipeline's cutpoint-based RV32I environment on Ibex.
    let setup = ibex_rv32i_analysis();
    let (na, constraint, candidates) = (&setup.na, setup.constraint, &setup.candidates);
    let stimulus = setup.stimulus();

    println!(
        "ibex rv32i falsification: {} candidates, {} aig nodes ({} ands), {} cycles x {} lane blocks{}",
        candidates.len(),
        na.aig.num_nodes(),
        na.aig.num_ands(),
        cycles,
        lane_blocks,
        if smoke { " (smoke)" } else { "" }
    );
    if args.has_flag("--eval-only") {
        use pdat_aig::AigSimulator;
        let t = Instant::now();
        let mut acc = 0u64;
        for block in 0..lane_blocks {
            let mut sim = AigSimulator::new(&na.aig);
            let mut rng = StdRng::seed_from_u64(block_seed(seed, block as u64));
            let mut inputs = vec![0u64; na.aig.inputs().len()];
            for _ in 0..cycles {
                stimulus(&mut rng, &mut inputs);
                sim.eval(&inputs);
                acc ^= sim.lit_word(constraint);
                sim.step();
            }
        }
        println!(
            "  eval-only (no candidates): {:.3}s over {} cycle-blocks (acc {acc:x})",
            t.elapsed().as_secs_f64(),
            cycles * lane_blocks
        );
        return;
    }

    // Each engine runs `reps` times (asserting identical results every
    // time); the reported figure is the fastest rep, which is the least
    // noisy wall-clock statistic on a shared host.
    let reps = if smoke { 1 } else { 3 };
    let measure = |label: String,
                       f: &dyn Fn(&SimFilterConfig) -> (Vec<pdat_mc::Candidate>, SimFilterStats),
                       threads: usize|
     -> Measurement {
        let config = SimFilterConfig {
            cycles,
            lane_blocks,
            threads,
            restart_threshold: 8,
        };
        let mut best: Option<Measurement> = None;
        for _ in 0..reps {
            let t = Instant::now();
            let (survivors, stats) = f(&config);
            let seconds = t.elapsed().as_secs_f64();
            if let Some(prev) = &best {
                assert_eq!(prev.stats, stats, "{label}: rep changed the stats");
                assert_eq!(prev.survivors, survivors.len(), "{label}: rep changed survivors");
            }
            if best.as_ref().map_or(true, |b| seconds < b.seconds) {
                best = Some(Measurement {
                    label: label.clone(),
                    seconds,
                    stats,
                    survivors: survivors.len(),
                });
            }
        }
        best.unwrap()
    };

    let mut runs: Vec<Measurement> = Vec::new();
    // Pre-optimization engine: per-node dispatch eval, allocating step,
    // uncompacted candidate scan. This is the baseline the headline
    // speedup is measured against.
    runs.push(measure(
        "seed_style".into(),
        &|c| legacy_filter(na, constraint, candidates, c, &stimulus, seed),
        1,
    ));
    runs.push(measure(
        "reference".into(),
        &|c| simulate_filter_reference(na, constraint, candidates, c, &stimulus, seed),
        1,
    ));
    for threads in [1usize, 2, 4] {
        runs.push(measure(
            format!("parallel_t{threads}"),
            &|c| simulate_filter_with_stats(na, constraint, candidates, c, &stimulus, seed),
            threads,
        ));
    }

    // The kill-set union is invariant across all engines, so survivors and
    // kill counts must agree everywhere. Full stats parity only holds among
    // the chunk-grouped engines (the seed-style engine scans each block
    // independently, so it performs more candidate checks for the same
    // result).
    let baseline = &runs[0];
    for r in &runs[1..] {
        assert_eq!(
            r.survivors, baseline.survivors,
            "{}: survivor count diverged from the seed-style baseline",
            r.label
        );
        assert_eq!(
            r.stats.kills, baseline.stats.kills,
            "{}: kill count diverged from the seed-style baseline",
            r.label
        );
    }
    let reference = &runs[1];
    for r in &runs[2..] {
        assert_eq!(
            r.stats, reference.stats,
            "{}: stats diverged from the reference engine",
            r.label
        );
    }

    let threads_avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut entries = String::new();
    for r in &runs {
        let speedup = baseline.seconds / r.seconds;
        println!(
            "  {:<12} {:>8.3}s  speedup {:>5.2}x  kills={} restarts={} candidate_cycles={}",
            r.label, r.seconds, speedup, r.stats.kills, r.stats.restarts, r.stats.candidate_cycles
        );
        entries.push_str(&format!(
            "    {{\"engine\": \"{}\", \"seconds\": {:.6}, \"speedup_vs_seed_style\": {:.3}, \
             \"survivors\": {}, \"kills\": {}, \"restarts\": {}, \"candidate_cycles\": {}, \
             \"wasted_lane_cycles\": {}, \"kills_per_kilocycle\": {:.3}}},\n",
            r.label,
            r.seconds,
            speedup,
            r.survivors,
            r.stats.kills,
            r.stats.restarts,
            r.stats.candidate_cycles,
            r.stats.wasted_lane_cycles,
            r.stats.kills_per_kilocycle(),
        ));
    }
    entries.truncate(entries.trim_end_matches(",\n").len());
    entries.push('\n');

    let headline = baseline.seconds / runs.last().unwrap().seconds;
    let json = format!(
        "{{\n  \"bench\": \"falsify_throughput\",\n  \"design\": \"ibex\",\n  \
         \"environment\": \"rv32i cutpoint\",\n  \"candidates\": {},\n  \"cycles\": {},\n  \
         \"lane_blocks\": {},\n  \"seed\": {},\n  \"smoke\": {},\n  \
         \"host_parallelism\": {},\n  \"runs\": [\n{}  ],\n  \
         \"headline_speedup_parallel_t4_vs_seed_style\": {:.3}\n}}\n",
        candidates.len(),
        cycles,
        lane_blocks,
        seed,
        smoke,
        threads_avail,
        entries,
        headline,
    );
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!(
        "headline: parallel_t4 is {headline:.2}x the seed-style engine (host parallelism {threads_avail}); wrote {out_path}"
    );
}
