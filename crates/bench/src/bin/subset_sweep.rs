//! Hot-vs-cold sweep over random RV32I subsets through the proof cache.
//!
//! The paper's use case is many-query: one core, many candidate ISA
//! subsets. This bench generates chains of random RV32I subsets
//! (`root ⊃ mid ⊃ leaf`, by removing instruction forms), draws a
//! Zipf-like request stream over them (repeats are common, as they are
//! when an architect iterates), and evaluates the stream twice on the
//! Ibex-class core under the cutpoint environment:
//!
//! - **cold** — every request solved from scratch (a fresh, empty
//!   `ProofCache` per request, so every lookup misses);
//! - **warm** — the whole stream through `run_pdat_batch` with one
//!   shared cache: repeats become exact hits (no solving at all) and
//!   chain descendants become lattice hits (the ancestor's proved set
//!   warm-starts Houdini, so only the delta candidates pay SAT time).
//!
//! Every request's proved invariant set must be bit-identical between
//! the two passes — the cache is a pure accelerator. The acceptance
//! targets are a ≥5× reduction in aggregate prove time on the warm
//! pass, and (since the cone-of-influence shard encoding plus CNF
//! preprocessing landed) a ≥2× reduction of the *cold* aggregate
//! against the pre-COI baseline recorded in `BENCH_PR7.json`. The
//! report breaks prove time into encode / preprocess / solve totals
//! for both passes. Results go to `BENCH_PR8.json` (or the path given
//! as the first non-flag argument). `--smoke` shrinks the stream for
//! a quick check and only warns on a missed target.

use pdat::{
    run_pdat_batch, run_pdat_cached, BatchRequest, CacheEffect, PdatConfig, ProofCache,
    ProveConfig, SubsetReport,
};
use pdat_bench::{ibex_rv32i_analysis, parse_bench_args, ProveTimeSplit};
use pdat_isa::rv32::RvInstr;
use pdat_isa::RvSubset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Cold aggregate prove time of the pre-COI prover on this exact
/// stream (BENCH_PR7.json), the baseline for the ≥2× cold target.
const PR7_COLD_PROVE_SECONDS: f64 = 590.0934;

/// Remove `n` random instruction forms, keeping at least 8.
fn shrink(rng: &mut StdRng, base: &RvSubset, n: usize, name: &str) -> RvSubset {
    let mut forms: Vec<RvInstr> = base.instrs.iter().copied().collect();
    let n = n.min(forms.len().saturating_sub(8));
    for _ in 0..n {
        let k = rng.gen_range(0..forms.len());
        forms.swap_remove(k);
    }
    RvSubset::new(name, forms)
}

/// Chains of random subsets: each chain is `root ⊃ mid ⊃ leaf`.
fn make_chains(rng: &mut StdRng, chains: usize) -> Vec<RvSubset> {
    let full = RvSubset::rv32i();
    let mut out = Vec::new();
    for c in 0..chains {
        let (n0, n1, n2) = (rng.gen_range(0..3), rng.gen_range(2..5), rng.gen_range(2..5));
        let root = shrink(rng, &full, n0, &format!("c{c}-root"));
        let mid = shrink(rng, &root, n1, &format!("c{c}-mid"));
        let leaf = shrink(rng, &mid, n2, &format!("c{c}-leaf"));
        out.extend([root, mid, leaf]);
    }
    out
}

/// Zipf-like request stream: every subset at least once, then repeats
/// weighted toward low indices.
fn request_stream(rng: &mut StdRng, distinct: usize, total: usize) -> Vec<usize> {
    let weights: Vec<f64> = (0..distinct).map(|k| 1.0 / (k + 1) as f64).collect();
    let total_w: f64 = weights.iter().sum();
    let mut stream: Vec<usize> = (0..distinct).collect();
    while stream.len() < total {
        let mut x = rng.gen::<f64>() * total_w;
        let mut pick = distinct - 1;
        for (k, w) in weights.iter().enumerate() {
            if x < *w {
                pick = k;
                break;
            }
            x -= w;
        }
        stream.push(pick);
    }
    // Shuffle so chain descendants routinely arrive before their
    // ancestors — the batch driver's lattice ordering must not depend
    // on a friendly request order.
    for i in (1..stream.len()).rev() {
        let j = rng.gen_range(0..=i);
        stream.swap(i, j);
    }
    stream
}

fn effect_name(e: &CacheEffect) -> &'static str {
    match e {
        CacheEffect::ExactHit => "exact",
        CacheEffect::LatticeHit { .. } => "lattice",
        CacheEffect::Miss => "miss",
    }
}

fn check_complete(tag: &str, idx: usize, report: &SubsetReport) {
    if let Some(res) = &report.result {
        assert!(
            res.degradations.is_empty(),
            "{tag} request {idx} degraded: {:?} — raise the budgets, a cut \
             run would make the passes incomparable",
            res.degradations
        );
    }
}

/// Sum the shard-level encode/preprocess/solve timers over every report
/// that actually ran the prover (cache hits carry no Houdini stats).
fn split_of(reports: &[SubsetReport]) -> ProveTimeSplit {
    let mut total = ProveTimeSplit::default();
    for r in reports {
        if let Some(res) = &r.result {
            total.add(&ProveTimeSplit::of(&res.houdini_stats));
        }
    }
    total
}

fn main() {
    let args = parse_bench_args("subset_sweep", "BENCH_PR8.json", &[]);
    let (smoke, out_path) = (args.smoke, args.out_path.clone());

    let chains = if smoke { 2 } else { 7 };
    let total_requests = if smoke { 10 } else { 120 };
    let mut rng = StdRng::seed_from_u64(0x5EED_5EEE);
    let subsets = make_chains(&mut rng, chains);
    let stream = request_stream(&mut rng, subsets.len(), total_requests);

    let setup = ibex_rv32i_analysis();
    let config = PdatConfig {
        sim_cycles: 512,
        conflict_budget: Some(300_000),
        prove: ProveConfig {
            threads: 4,
            shard_size: 1024,
            ..Default::default()
        },
        seed: 0xB14C,
        ..Default::default()
    };

    println!(
        "subset sweep on ibex: {} requests over {} random subsets in {} chains{}",
        stream.len(),
        subsets.len(),
        chains,
        if smoke { " (smoke)" } else { "" }
    );

    // --- Cold pass: a fresh cache per request, so nothing is reused. ---
    let mut cold: Vec<SubsetReport> = Vec::with_capacity(stream.len());
    let cold_wall = Instant::now();
    for (i, &s) in stream.iter().enumerate() {
        let env = setup.env(&subsets[s]);
        let fresh = ProofCache::new();
        let report = run_pdat_cached(&setup.core.netlist, &env, &[], &config, &fresh)
            .expect("cold run failed");
        assert!(
            matches!(report.cache, CacheEffect::Miss),
            "a fresh cache cannot hit"
        );
        check_complete("cold", i, &report);
        if i % 10 == 0 {
            println!(
                "  cold {i:>3}/{}: {} proved={} prove={:.2}s",
                stream.len(),
                subsets[s].name,
                report.proved.len(),
                report.prove_time.as_secs_f64()
            );
        }
        cold.push(report);
    }
    let cold_wall = cold_wall.elapsed().as_secs_f64();

    // --- Warm pass: the whole stream through one batch + one cache. ---
    let requests: Vec<BatchRequest> = stream
        .iter()
        .map(|&s| BatchRequest {
            env: setup.env(&subsets[s]),
            extras: Vec::new(),
        })
        .collect();
    let cache = ProofCache::new();
    let warm_wall = Instant::now();
    let warm: Vec<_> = run_pdat_batch(&setup.core.netlist, &requests, &config, &cache)
        .expect("warm batch failed")
        .into_iter()
        .map(|r| r.expect("warm request failed"))
        .collect();
    let warm_wall = warm_wall.elapsed().as_secs_f64();

    // --- The contract: warm answers are bit-identical to cold. ---
    assert_eq!(cold.len(), warm.len());
    let mut effects = [0usize; 3]; // exact, lattice, miss
    for (i, (c, w)) in cold.iter().zip(&warm).enumerate() {
        check_complete("warm", i, w);
        assert_eq!(
            c.proved, w.proved,
            "request {i} ({}) proved set diverged between cold and warm",
            subsets[stream[i]].name
        );
        assert_eq!(
            (c.summary.optimized.gate_count, c.summary.optimized.dff_count),
            (w.summary.optimized.gate_count, w.summary.optimized.dff_count),
            "request {i} resynthesis summary diverged"
        );
        match w.cache {
            CacheEffect::ExactHit => effects[0] += 1,
            CacheEffect::LatticeHit { .. } => effects[1] += 1,
            CacheEffect::Miss => effects[2] += 1,
        }
    }

    let cold_prove: f64 = cold.iter().map(|r| r.prove_time.as_secs_f64()).sum();
    let warm_prove: f64 = warm.iter().map(|r| r.prove_time.as_secs_f64()).sum();
    let speedup = if warm_prove > 0.0 {
        cold_prove / warm_prove
    } else {
        f64::INFINITY
    };
    let cold_split = split_of(&cold);
    let warm_split = split_of(&warm);
    let cold_vs_pr7 = PR7_COLD_PROVE_SECONDS / cold_prove.max(1e-9);
    let stats = cache.stats();
    println!(
        "  warm effects: {} exact, {} lattice, {} miss ({} cached runs)",
        effects[0],
        effects[1],
        effects[2],
        cache.len()
    );
    println!(
        "  prove time: cold {cold_prove:.2}s -> warm {warm_prove:.2}s  ({speedup:.1}x, target >= 5x)"
    );
    println!(
        "  cold split: encode {:.2}s + preprocess {:.2}s + solve {:.2}s  \
         ({cold_vs_pr7:.2}x vs the {PR7_COLD_PROVE_SECONDS:.1}s pre-COI cold baseline, target >= 2x)",
        cold_split.encode_seconds, cold_split.preprocess_seconds, cold_split.solve_seconds
    );
    println!(
        "  warm split: encode {:.2}s + preprocess {:.2}s + solve {:.2}s",
        warm_split.encode_seconds, warm_split.preprocess_seconds, warm_split.solve_seconds
    );
    println!("  wall time:  cold {cold_wall:.2}s -> warm {warm_wall:.2}s");

    // --- Per-subset table (for EXPERIMENTS.md). ---
    let mut rows_json = String::new();
    for (s, subset) in subsets.iter().enumerate() {
        let idxs: Vec<usize> = stream
            .iter()
            .enumerate()
            .filter(|(_, &k)| k == s)
            .map(|(i, _)| i)
            .collect();
        if idxs.is_empty() {
            continue;
        }
        let n = idxs.len() as f64;
        let cold_mean: f64 = idxs
            .iter()
            .map(|&i| cold[i].prove_time.as_secs_f64())
            .sum::<f64>()
            / n;
        // The batch resolves one representative per distinct subset; the
        // rest are exact hits. Report the solved one's effect and time.
        let solved = idxs
            .iter()
            .copied()
            .find(|&i| !matches!(warm[i].cache, CacheEffect::ExactHit))
            .unwrap_or(idxs[0]);
        let warm_of = match warm[solved].cache {
            CacheEffect::LatticeHit { warm } => warm,
            _ => 0,
        };
        if !rows_json.is_empty() {
            rows_json.push_str(",\n    ");
        }
        rows_json.push_str(&format!(
            "{{\"subset\": \"{}\", \"forms\": {}, \"requests\": {}, \"proved\": {}, \
             \"cold_mean_prove_seconds\": {:.4}, \"warm_effect\": \"{}\", \
             \"warm_start_invariants\": {}, \"warm_prove_seconds\": {:.4}}}",
            subset.name,
            subset.instrs.len(),
            idxs.len(),
            warm[solved].proved.len(),
            cold_mean,
            effect_name(&warm[solved].cache),
            warm_of,
            warm[solved].prove_time.as_secs_f64(),
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"subset_sweep\",\n  \"design\": \"ibex\",\n  \
         \"environment\": \"random rv32i subsets, cutpoint\",\n  \"smoke\": {},\n  \
         \"requests\": {},\n  \"distinct_subsets\": {},\n  \"chains\": {},\n  \
         \"cold_prove_seconds\": {:.4},\n  \"warm_prove_seconds\": {:.4},\n  \
         \"prove_speedup\": {:.2},\n  \"target_speedup\": 5.0,\n  \
         \"cold_encode_seconds\": {:.4},\n  \"cold_preprocess_seconds\": {:.4},\n  \
         \"cold_solve_seconds\": {:.4},\n  \"warm_encode_seconds\": {:.4},\n  \
         \"warm_preprocess_seconds\": {:.4},\n  \"warm_solve_seconds\": {:.4},\n  \
         \"pr7_cold_prove_seconds\": {:.4},\n  \"cold_speedup_vs_pr7\": {:.2},\n  \
         \"cold_target_speedup_vs_pr7\": 2.0,\n  \
         \"cold_wall_seconds\": {:.4},\n  \"warm_wall_seconds\": {:.4},\n  \
         \"warm_exact_hits\": {},\n  \"warm_lattice_hits\": {},\n  \"warm_misses\": {},\n  \
         \"cache_insertions\": {},\n  \
         \"proved_sets_bit_identical\": true,\n  \
         \"subsets\": [\n    {}\n  ]\n}}\n",
        smoke,
        stream.len(),
        subsets.len(),
        chains,
        cold_prove,
        warm_prove,
        speedup,
        cold_split.encode_seconds,
        cold_split.preprocess_seconds,
        cold_split.solve_seconds,
        warm_split.encode_seconds,
        warm_split.preprocess_seconds,
        warm_split.solve_seconds,
        PR7_COLD_PROVE_SECONDS,
        cold_vs_pr7,
        cold_wall,
        warm_wall,
        effects[0],
        effects[1],
        effects[2],
        stats.insertions,
        rows_json,
    );
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    let mut failed = false;
    if speedup < 5.0 {
        if smoke {
            eprintln!("note: smoke stream too small for the 5x target ({speedup:.1}x)");
        } else {
            eprintln!("FAIL: warm sweep speedup {speedup:.1}x below the 5x target");
            failed = true;
        }
    }
    if cold_vs_pr7 < 2.0 {
        if smoke {
            eprintln!(
                "note: smoke stream not comparable to the pre-COI cold baseline ({cold_vs_pr7:.2}x)"
            );
        } else {
            eprintln!(
                "FAIL: cold prove time {cold_prove:.1}s is only {cold_vs_pr7:.2}x faster than \
                 the {PR7_COLD_PROVE_SECONDS:.1}s pre-COI baseline (target >= 2x)"
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("subset sweep: OK");
}
