//! Regenerates the paper's Table II: core (micro)architecture features,
//! plus the measured gate counts of this reproduction's generators.

use pdat_cores::{build_cortexm0, build_ibex, build_ridecore, core_specs};

fn main() {
    println!("TABLE II — architecture and microarchitecture features\n");
    for spec in core_specs() {
        println!("{spec}");
    }
    println!("\nmeasured gate counts of the reproduction's generators:");
    for (name, stats) in [
        ("Ibex-class", build_ibex().netlist.stats()),
        ("RIDECORE-class", build_ridecore().netlist.stats()),
        ("Cortex-M0-class", build_cortexm0().netlist.stats()),
    ] {
        println!(
            "  {:<16} {:>7} gates ({} DFF), {:>9.0} um^2",
            name, stats.gate_count, stats.dff_count, stats.area_um2
        );
    }
}
