//! Exploratory harness: PDAT on the Ibex-class core for a few subsets.

use pdat::{run_pdat, ConstraintMode, Environment, PdatConfig};
use pdat_cores::build_ibex;
use pdat_isa::RvSubset;
use std::time::Instant;

fn main() {
    let core = build_ibex();
    println!("full (no synthesis): {}", core.netlist.stats());
    let config = PdatConfig::default();

    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("imcz");
    let subset = match which {
        "imcz" => RvSubset::rv32imcz(),
        "imc" => RvSubset::rv32imc(),
        "im" => RvSubset::rv32im(),
        "ic" => RvSubset::rv32ic(),
        "i" => RvSubset::rv32i(),
        "e" => RvSubset::rv32e(),
        _ => RvSubset::rv32imcz(),
    };
    let t = Instant::now();
    let res = run_pdat(
        &core.netlist,
        &Environment::Rv {
            subset: &subset,
            ports: vec![core.cut_fetch.clone()],
            mode: ConstraintMode::CutpointBased,
        },
        &config,
    ).expect("pdat run");
    println!(
        "{}: cands={} sim_survivors={} proved={} | gates {} -> {} ({:+.1}%) area {:.0} -> {:.0} ({:+.1}%) | {:.1}s (sim {:.1}s, prove {:.1}s, synth {:.1}s)",
        subset.name,
        res.candidates,
        res.sim_survivors,
        res.proved,
        res.baseline.gate_count,
        res.optimized.gate_count,
        -100.0 * res.gate_reduction(),
        res.baseline.area_um2,
        res.optimized.area_um2,
        -100.0 * res.area_reduction(),
        t.elapsed().as_secs_f64(),
        res.stage_times.0.as_secs_f64(),
        res.stage_times.1.as_secs_f64(),
        res.stage_times.2.as_secs_f64(),
    );
}
