//! Regenerates the paper's Fig. 6: PDAT on the obfuscated Cortex-M0
//! netlist with port-based constraints.

use pdat_bench::{m0_variant_rows, paper_config, render_rows, write_csv};
use pdat_isa::ThumbSubset;
use pdat_workloads::{mibench_thumb_all, mibench_thumb_subset, BenchGroup};

fn main() {
    let config = paper_config();
    let subsets = vec![
        ThumbSubset::armv6m(),
        mibench_thumb_subset(BenchGroup::Networking),
        mibench_thumb_subset(BenchGroup::Security),
        mibench_thumb_subset(BenchGroup::Automotive),
        mibench_thumb_all(),
        ThumbSubset::interesting_subset(),
    ];
    let rows = m0_variant_rows(&subsets, true, &config);
    print!(
        "{}",
        render_rows("Fig. 6: obfuscated Cortex-M0 variants", &rows)
    );
    if let Ok(p) = write_csv("fig6.csv", &rows) {
        println!("-> {}\n", p.display());
    }
    println!(
        "paper shape: full-ISA PDAT alone saves ~20% area / 18% gates on the\n\
         obfuscated core; 'MiBench All' matches 'ARMv6-M' (port-based constraints\n\
         can't capture two-halfword alignment); Interesting Subset ~23%/20%."
    );
}
