fn main() {
    println!("{}", pdat_cores::build_ibex().netlist.stats());
    println!("{}", pdat_cores::build_cortexm0().netlist.stats());
    println!("{}", pdat_cores::build_ridecore().netlist.stats());
}
