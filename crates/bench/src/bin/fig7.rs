//! Regenerates the paper's Fig. 7: PDAT scalability on the ~100k-gate
//! RIDECORE-class out-of-order core (port-based constraints).

use pdat_bench::{
    paper_config, render_rows, restrict_to_ridecore, ridecore_isa, ridecore_variant_rows,
    write_csv,
};
use pdat_isa::RvSubset;
use pdat_workloads::mibench_rv_all;

fn main() {
    let config = paper_config();
    let subsets = vec![
        ridecore_isa(), // the paper's "RIDECORE ISA" full-ISA PDAT run
        RvSubset::rv32i(),
        RvSubset::rv32e(),
        restrict_to_ridecore(mibench_rv_all()),
    ];
    let rows = ridecore_variant_rows(&subsets, &config);
    print!("{}", render_rows("Fig. 7: RIDECORE variants", &rows));
    if let Ok(p) = write_csv("fig7.csv", &rows) {
        println!("-> {}\n", p.display());
    }
    println!(
        "paper shape: results muted vs Ibex (large OoO structures are\n\
         ISA-insensitive); ~6% area from the full-ISA run; 14-17% gate reduction\n\
         across variants; absolute savings comparable to Ibex (RV32i->RV32e delta)."
    );
}
