//! Proof-cache smoke run for CI (tier-1).
//!
//! Exercises all three cache outcomes on a small instruction-port design
//! and the persistence round-trip, checking the purity contract at each
//! step:
//!
//! - **miss** — first request solves cold and populates the cache;
//! - **exact hit** — the identical request answers instantly (zero
//!   prove time) with the bit-identical proved set;
//! - **lattice hit** — a strict subset environment warm-starts off the
//!   cached ancestor and still matches its own cold-run oracle;
//! - **save/load** — a round-trip through the on-disk format preserves
//!   every entry (subsequent requests are exact hits with the same
//!   answers), and a corrupted file is rejected as an error, not a
//!   panic.
//!
//! Exits nonzero on any violation.

use pdat::{
    load_cache, run_pdat_cached, save_cache, CacheEffect, ConstraintMode, Environment, PdatConfig,
    ProofCache, SubsetReport,
};
use pdat_isa::rv32::RvInstr;
use pdat_isa::RvSubset;
use pdat_netlist::{CellKind, NetId, Netlist};

/// Exact-pattern detectors + sticky latches for three instructions on a
/// 32-bit instruction port: removing a watched instruction from the
/// environment makes its detector provably constant-false, so the
/// proved set genuinely varies along the subset lattice.
fn detector_core() -> (Netlist, Vec<NetId>) {
    let mut nl = Netlist::new("rvdet");
    let port: Vec<NetId> = (0..32).map(|b| nl.add_input(&format!("i{b}"))).collect();
    for instr in [RvInstr::Add, RvInstr::Sub, RvInstr::Jalr] {
        let p = instr.pattern();
        let tag = format!("{instr:?}").to_lowercase();
        let mut acc: Option<NetId> = None;
        for b in 0..32 {
            if p.mask >> b & 1 == 0 {
                continue;
            }
            let bit = if p.value >> b & 1 == 1 {
                port[b]
            } else {
                nl.add_cell(CellKind::Inv, &[port[b]], &format!("{tag}_n{b}"))
            };
            acc = Some(match acc {
                None => bit,
                Some(a) => nl.add_cell(CellKind::And2, &[a, bit], &format!("{tag}_a{b}")),
            });
        }
        let det = acc.expect("pattern has masked bits");
        let fb = nl.add_net(&format!("{tag}_fb"));
        let q = nl.add_dff(fb, false, &format!("{tag}_seen"));
        let sticky = nl.add_cell(CellKind::Or2, &[q, det], &format!("{tag}_sticky"));
        nl.assign_alias(fb, sticky);
        nl.add_output(&format!("saw_{tag}"), sticky);
    }
    (nl, port)
}

fn config() -> PdatConfig {
    PdatConfig {
        sim_cycles: 64,
        conflict_budget: Some(40_000),
        max_iterations: 1_000,
        seed: 0xCAC4E,
        ..Default::default()
    }
}

fn run(
    nl: &Netlist,
    subset: &RvSubset,
    port: &[NetId],
    cache: &ProofCache,
) -> SubsetReport {
    let env = Environment::Rv {
        subset,
        ports: vec![port.to_vec()],
        mode: ConstraintMode::PortBased,
    };
    match run_pdat_cached(nl, &env, &[], &config(), cache) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cache smoke: pipeline run failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut failures = 0usize;
    let mut check = |ok: bool, what: &str| {
        if ok {
            println!("  ok: {what}");
        } else {
            eprintln!("  FAIL: {what}");
            failures += 1;
        }
    };

    let (nl, port) = detector_core();
    let full = RvSubset::rv32i();
    let mut reduced = RvSubset::rv32i();
    reduced.instrs.remove(&RvInstr::Add);
    reduced.instrs.remove(&RvInstr::Sub);
    reduced.name = "rv32i-no-addsub".to_string();

    let cache = ProofCache::new();

    // Miss, then exact hit.
    let first = run(&nl, &full, &port, &cache);
    check(matches!(first.cache, CacheEffect::Miss), "first request misses");
    let again = run(&nl, &full, &port, &cache);
    check(
        matches!(again.cache, CacheEffect::ExactHit),
        "repeat request hits exactly",
    );
    check(again.proved == first.proved, "exact hit returns the identical proved set");
    check(again.prove_time.is_zero(), "exact hit spends no prove time");

    // Lattice hit: the reduced subset warm-starts off the full entry and
    // must still match its own cold oracle.
    let warm = run(&nl, &reduced, &port, &cache);
    let warmed = matches!(warm.cache, CacheEffect::LatticeHit { warm } if warm > 0);
    check(warmed, "strict subset warm-starts off the cached ancestor");
    let cold = run(&nl, &reduced, &port, &ProofCache::new());
    check(warm.proved == cold.proved, "warm answer is bit-identical to cold");
    check(
        warm.proved.len() > first.proved.len(),
        "removing instructions proves strictly more",
    );

    // Persistence round-trip: every entry survives, answers unchanged.
    let path = std::env::temp_dir().join("pdat_cache_smoke.txt");
    let saved = save_cache(&cache, &path);
    check(saved.is_ok(), "save_cache succeeds");
    let reloaded = ProofCache::new();
    let loaded = load_cache(&reloaded, &path);
    check(
        loaded.as_ref().is_ok_and(|&n| n == cache.len()),
        "load_cache restores every entry",
    );
    let replay = run(&nl, &reduced, &port, &reloaded);
    check(
        matches!(replay.cache, CacheEffect::ExactHit),
        "reloaded cache answers exactly",
    );
    check(replay.proved == cold.proved, "reloaded answer is bit-identical");

    // A corrupted file is an error, never a panic.
    let bad = std::env::temp_dir().join("pdat_cache_smoke_bad.txt");
    if std::fs::write(&bad, "pdat-proof-cache v1\nrun zz zz\n").is_ok() {
        check(
            load_cache(&ProofCache::new(), &bad).is_err(),
            "corrupt cache file is rejected",
        );
        let _ = std::fs::remove_file(&bad);
    }
    let _ = std::fs::remove_file(&path);

    if failures > 0 {
        eprintln!("cache smoke: {failures} check(s) failed");
        std::process::exit(1);
    }
    println!("cache smoke: OK");
}
