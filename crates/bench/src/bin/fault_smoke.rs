//! Fault-injection smoke run for CI (tier-1).
//!
//! Drives the full PDAT pipeline on the keyed-design fixture under a
//! sweep of seeded [`FaultPlan`]s — forced solver exhaustion and
//! mid-simulation worker panics — and checks the robustness contract on
//! every one: the run completes without aborting the process, and the
//! proved set is a subset of the fault-free oracle's. Exits nonzero on
//! any violation.
//!
//! Usage: `fault_smoke [N_SEEDS]` (default 12).

use pdat::{run_pdat, Environment, FaultPlan, PdatConfig};
use pdat_mc::CandidateKind;
use pdat_netlist::{CellKind, NetId, Netlist};
use std::collections::HashSet;

fn keyed_design() -> Netlist {
    let mut nl = Netlist::new("locked");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let fb = nl.add_net("fb");
    let key = nl.add_dff(fb, true, "key");
    nl.assign_alias(fb, key);
    let t = nl.add_cell(CellKind::And2, &[a, b], "t");
    let decoy = nl.add_cell(CellKind::Xor2, &[a, b], "decoy");
    let out = nl.add_cell(CellKind::Mux2, &[decoy, t, key], "out");
    nl.add_output("y", out);
    nl
}

fn config(fault_plan: FaultPlan) -> PdatConfig {
    PdatConfig {
        sim_cycles: 64,
        conflict_budget: Some(40_000),
        max_iterations: 1_000,
        seed: 0x5A0E,
        fault_plan,
        ..Default::default()
    }
}

fn main() {
    let n_seeds: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().unwrap_or(12))
        .unwrap_or(12);

    let nl = keyed_design();
    let oracle = run_pdat(&nl, &Environment::Unconstrained, &config(FaultPlan::default()))
        .expect("oracle run");
    assert!(oracle.proved >= 1, "oracle must prove the key invariant");
    assert!(oracle.degradations.is_empty(), "oracle must be fault-free");
    let oracle_set: HashSet<(NetId, CandidateKind)> = oracle
        .proved_invariants
        .iter()
        .map(|c| (c.net, c.kind))
        .collect();
    println!(
        "fault smoke: oracle proves {} invariant(s); sweeping {} fault seeds",
        oracle.proved, n_seeds
    );

    // Injected worker panics are expected; keep the log readable.
    std::panic::set_hook(Box::new(|_| {}));

    let mut injected = 0usize;
    let mut degraded = 0usize;
    for fault_seed in 0..n_seeds {
        let plan = FaultPlan::from_seed(fault_seed);
        if !plan.is_empty() {
            injected += 1;
        }
        let res = run_pdat(&nl, &Environment::Unconstrained, &config(plan.clone()))
            .expect("faulted run must return a result, not abort");
        let proved: HashSet<(NetId, CandidateKind)> = res
            .proved_invariants
            .iter()
            .map(|c| (c.net, c.kind))
            .collect();
        if !proved.is_subset(&oracle_set) {
            let _ = std::panic::take_hook();
            eprintln!("FAIL: fault seed {fault_seed} ({plan:?}) invented proofs");
            std::process::exit(1);
        }
        if let Err(e) = res.netlist.validate() {
            let _ = std::panic::take_hook();
            eprintln!("FAIL: fault seed {fault_seed} produced an invalid netlist: {e}");
            std::process::exit(1);
        }
        if !res.degradations.is_empty() {
            degraded += 1;
        }
    }
    let _ = std::panic::take_hook();
    println!(
        "fault smoke OK: {n_seeds} schedules ({injected} armed, {degraded} degraded), \
         every proved set within the oracle"
    );
}
