//! Fault-injection smoke run for CI (tier-1).
//!
//! Drives the full PDAT pipeline on the keyed-design fixture under a
//! sweep of seeded [`FaultPlan`]s — forced solver exhaustion and
//! mid-simulation worker panics — and checks the robustness contract on
//! every one: the run completes without aborting the process, and the
//! proved set is a subset of the fault-free oracle's. A second phase
//! sweeps the same seeded plans (now including the service arms: worker
//! panic on pickup, deadline fuse, interrupted checkpoint) through a
//! [`pdat_serve::PdatService`] over the same fixture and checks the
//! service contract: every `Done` reply is bit-identical to the cold
//! oracle, and the snapshot on disk is never corrupted. Exits nonzero
//! on any violation.
//!
//! Usage: `fault_smoke [N_SEEDS]` (default 12).

use pdat::{
    load_cache_or_quarantine, run_pdat, run_pdat_cached, CandidateId, Environment, FaultPlan,
    LoadOutcome, PdatConfig, ProofCache,
};
use pdat_mc::CandidateKind;
use pdat_netlist::{CellKind, NetId, Netlist};
use pdat_serve::{OwnedEnvironment, PdatService, Reply, ServeConfig, ServeRequest};
use std::collections::HashSet;
use std::time::Duration;

fn keyed_design() -> Netlist {
    let mut nl = Netlist::new("locked");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let fb = nl.add_net("fb");
    let key = nl.add_dff(fb, true, "key");
    nl.assign_alias(fb, key);
    let t = nl.add_cell(CellKind::And2, &[a, b], "t");
    let decoy = nl.add_cell(CellKind::Xor2, &[a, b], "decoy");
    let out = nl.add_cell(CellKind::Mux2, &[decoy, t, key], "out");
    nl.add_output("y", out);
    nl
}

fn config(fault_plan: FaultPlan) -> PdatConfig {
    PdatConfig {
        sim_cycles: 64,
        conflict_budget: Some(40_000),
        max_iterations: 1_000,
        seed: 0x5A0E,
        fault_plan,
        ..Default::default()
    }
}

fn main() {
    let n_seeds: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().unwrap_or(12))
        .unwrap_or(12);

    let nl = keyed_design();
    let oracle = run_pdat(&nl, &Environment::Unconstrained, &config(FaultPlan::default()))
        .expect("oracle run");
    assert!(oracle.proved >= 1, "oracle must prove the key invariant");
    assert!(oracle.degradations.is_empty(), "oracle must be fault-free");
    let oracle_set: HashSet<(NetId, CandidateKind)> = oracle
        .proved_invariants
        .iter()
        .map(|c| (c.net, c.kind))
        .collect();
    println!(
        "fault smoke: oracle proves {} invariant(s); sweeping {} fault seeds",
        oracle.proved, n_seeds
    );

    // Injected worker panics are expected; keep the log readable.
    std::panic::set_hook(Box::new(|_| {}));

    let mut injected = 0usize;
    let mut degraded = 0usize;
    for fault_seed in 0..n_seeds {
        let plan = FaultPlan::from_seed(fault_seed);
        if !plan.is_empty() {
            injected += 1;
        }
        let res = run_pdat(&nl, &Environment::Unconstrained, &config(plan.clone()))
            .expect("faulted run must return a result, not abort");
        let proved: HashSet<(NetId, CandidateKind)> = res
            .proved_invariants
            .iter()
            .map(|c| (c.net, c.kind))
            .collect();
        if !proved.is_subset(&oracle_set) {
            let _ = std::panic::take_hook();
            eprintln!("FAIL: fault seed {fault_seed} ({plan:?}) invented proofs");
            std::process::exit(1);
        }
        if let Err(e) = res.netlist.validate() {
            let _ = std::panic::take_hook();
            eprintln!("FAIL: fault seed {fault_seed} produced an invalid netlist: {e}");
            std::process::exit(1);
        }
        if !res.degradations.is_empty() {
            degraded += 1;
        }
    }
    // The seed derivation must exercise every arm — including the three
    // service arms — within a reasonable seed range, or the sweeps above
    // and below are weaker than they look.
    let mut arm_hits = [0usize; 5];
    for seed in 0..64 {
        let p = FaultPlan::from_seed(seed);
        arm_hits[0] += usize::from(p.solver_unknown_after_conflicts.is_some());
        arm_hits[1] += usize::from(p.sim_panic_at.is_some());
        arm_hits[2] += usize::from(p.io_fail_after_writes.is_some());
        arm_hits[3] += usize::from(p.worker_panic_on_request.is_some());
        arm_hits[4] += usize::from(p.deadline_fuse.is_some());
    }
    if arm_hits.iter().any(|&n| n == 0) {
        let _ = std::panic::take_hook();
        eprintln!("FAIL: from_seed never arms some fault arm in 64 seeds: {arm_hits:?}");
        std::process::exit(1);
    }

    // Service phase: the same seeded plans through a resident service.
    // Contract: every reply is typed; every Done reply equals the cold
    // oracle bit-for-bit; the snapshot survives interrupted checkpoints.
    let service_oracle: Vec<CandidateId> = run_pdat_cached(
        &nl,
        &Environment::Unconstrained,
        &[],
        &config(FaultPlan::default()),
        &ProofCache::new(),
    )
    .expect("service oracle run")
    .proved;
    let dir = std::env::temp_dir().join(format!("pdat_fault_smoke_{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    let cache_path = dir.join("cache.txt");
    let service_seeds = n_seeds.min(8);
    let mut served = 0u64;
    let mut service_panics = 0u64;
    for fault_seed in 0..service_seeds {
        let plan = FaultPlan::from_seed(fault_seed);
        let service = PdatService::start(
            nl.clone(),
            ServeConfig {
                workers: 2,
                retry_cap: 2,
                backoff_base: Duration::from_micros(100),
                cache_path: Some(cache_path.clone()),
                fault_plan: plan.clone(),
                pdat: config(FaultPlan::default()),
                ..Default::default()
            },
        )
        .expect("service boots on the keyed design");
        let tickets: Vec<_> = (0..4)
            .map(|_| {
                service
                    .submit(ServeRequest {
                        env: OwnedEnvironment::Unconstrained,
                        extras: Vec::new(),
                    })
                    .expect("admission")
            })
            .collect();
        for t in tickets {
            match t.wait() {
                Reply::Done(report) => {
                    served += 1;
                    if report.proved != service_oracle {
                        let _ = std::panic::take_hook();
                        eprintln!(
                            "FAIL: service seed {fault_seed} ({plan:?}) diverged from oracle"
                        );
                        std::process::exit(1);
                    }
                }
                other => {
                    let _ = std::panic::take_hook();
                    eprintln!(
                        "FAIL: service seed {fault_seed} ({plan:?}): reply {other:?} \
                         (faults are first-attempt-only, so retries must complete)"
                    );
                    std::process::exit(1);
                }
            }
        }
        service_panics += service.shutdown().worker_panics;
        if matches!(
            load_cache_or_quarantine(&ProofCache::new(), &cache_path),
            Ok(LoadOutcome::Quarantined { .. }) | Err(_)
        ) {
            let _ = std::panic::take_hook();
            eprintln!("FAIL: service seed {fault_seed} left a corrupt snapshot");
            std::process::exit(1);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);

    let _ = std::panic::take_hook();
    println!(
        "fault smoke OK: {n_seeds} schedules ({injected} armed, {degraded} degraded), \
         every proved set within the oracle; service phase answered {served} request(s) \
         over {service_seeds} plans ({service_panics} panic(s) caught), all oracle-exact"
    );
}
