//! Netlist obfuscation, modeling the paper's obfuscated Cortex-M0 input.
//!
//! Three transformations are applied:
//!
//! 1. **Key-based camouflage** — a bank of key latches (DFFs that hold
//!    their reset value forever) drives multiplexers inserted on randomly
//!    chosen signals; the "wrong key" leg connects to an unrelated decoy
//!    net. Combinational synthesis cannot remove these muxes (the key
//!    value is a *sequential* invariant), but PDAT's property checking
//!    proves each key latch constant and the rewiring collapses them —
//!    reproducing the paper's ~20% savings from running PDAT on the
//!    obfuscated core with its full ISA.
//! 2. **Universal-gate decomposition** — every cell is lowered to
//!    NAND2/NOR2/INV, hiding the original gate structure.
//! 3. **Name scrambling and cell shuffling** — internal net names become
//!    `obf_N` and cell emission order is permuted; port names survive
//!    (constraints must attach somewhere), matching how obfuscated firm IP
//!    is delivered.

use pdat_netlist::{CellKind, Driver, NetId, Netlist};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Obfuscation knobs.
#[derive(Debug, Clone)]
pub struct ObfuscateConfig {
    /// RNG seed (obfuscation is deterministic per seed).
    pub seed: u64,
    /// Fraction of combinational cell outputs that get a camouflage mux.
    pub camouflage_fraction: f64,
}

impl Default for ObfuscateConfig {
    fn default() -> Self {
        ObfuscateConfig {
            seed: 0xB10C5,
            camouflage_fraction: 0.15,
        }
    }
}

/// Obfuscate `nl`, returning the new netlist and the mapping from old net
/// ids to new ones (ports keep their names; use the map for analysis
/// handles).
pub fn obfuscate(nl: &Netlist, config: &ObfuscateConfig) -> (Netlist, HashMap<NetId, NetId>) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = Netlist::new(format!("{}_obf", nl.name()));

    // New net per old net, names scrambled.
    let mut order: Vec<usize> = (0..nl.num_nets()).collect();
    order.shuffle(&mut rng);
    let mut name_of: Vec<String> = vec![String::new(); nl.num_nets()];
    for (i, &slot) in order.iter().enumerate() {
        name_of[slot] = format!("obf_{i}");
    }

    let mut map: HashMap<NetId, NetId> = HashMap::new();
    // Primary inputs keep their port names.
    for &i in nl.inputs() {
        let id = out.add_input(&nl.net(i).name);
        map.insert(i, id);
    }
    for (net, _) in nl.nets() {
        if map.contains_key(&net) {
            continue;
        }
        let id = out.add_net(&name_of[net.index()]);
        map.insert(net, id);
    }

    // Key latch bank: built lazily as camouflage sites are chosen.
    let mut key_nets: Vec<(NetId, bool)> = Vec::new();
    let mut fresh = 0usize;
    let fresh_net = |fresh: &mut usize| -> String {
        *fresh += 1;
        format!("obf_x{fresh}")
    };

    // Emit cells in shuffled order, decomposed to NAND/NOR/INV.
    let mut cell_order: Vec<usize> = (0..nl.num_cells()).collect();
    cell_order.shuffle(&mut rng);

    // Decoy candidates: primary inputs and DFF outputs (never create
    // combinational cycles).
    let mut decoys: Vec<NetId> = nl.inputs().to_vec();
    for (_, c) in nl.dffs() {
        decoys.push(c.output);
    }

    // First pass: emit every cell with its output going to a scratch net if
    // the site is camouflaged, then route through the key mux onto the
    // mapped output net.
    for &ci in &cell_order {
        let c = nl.cell(pdat_netlist::CellId(ci as u32));
        // Skip cells whose output was rewired away in the source.
        if nl.driver(c.output) != Driver::Cell(pdat_netlist::CellId(ci as u32)) {
            continue;
        }
        let ins: Vec<NetId> = c.inputs.iter().map(|&n| map[&n]).collect();
        let camouflage = !c.kind.is_sequential()
            && !c.kind.is_tie()
            && !decoys.is_empty()
            && rng.gen_bool(config.camouflage_fraction);
        let target = map[&c.output];
        if camouflage {
            // Real value lands on a scratch net; a key mux selects it.
            let nm = fresh_net(&mut fresh);
            let real = emit_cell(&mut out, c.kind, &ins, &nm, c.init);
            let key_val = rng.gen_bool(0.5);
            let key_q = {
                let nm = fresh_net(&mut fresh);
                // D = Q: the latch holds its reset value forever.
                let fb = out.add_net(format!("{nm}_fb"));
                let q = out.add_dff(fb, key_val, &nm);
                out.assign_alias(fb, q);
                q
            };
            key_nets.push((key_q, key_val));
            let decoy_src = decoys[rng.gen_range(0..decoys.len())];
            let decoy = map[&decoy_src];
            // MUX(sel=key, t, e) with the real value on the leg the key
            // actually selects.
            let (t, e) = if key_val { (real, decoy) } else { (decoy, real) };
            let muxed = mux_nand(&mut out, key_q, t, e);
            out.assign_alias(target, muxed);
        } else {
            let nm = fresh_net(&mut fresh);
            let o = emit_cell(&mut out, c.kind, &ins, &nm, c.init);
            out.assign_alias(target, o);
        }
    }

    // Const/alias drivers from the source netlist.
    for (net, _) in nl.nets() {
        match nl.driver(net) {
            Driver::Const(v) => out.assign_const(map[&net], v),
            Driver::Alias(src) => {
                let a = map[&net];
                let s = map[&src];
                if a != s {
                    out.assign_alias(a, s);
                }
            }
            _ => {}
        }
    }

    // Outputs keep their port names.
    for (name, net) in nl.outputs() {
        out.add_output(name.clone(), map[net]);
    }

    (out, map)
}

/// Emit one source cell as NAND2/NOR2/INV structure; returns the output net.
fn emit_cell(out: &mut Netlist, kind: CellKind, ins: &[NetId], nm: &str, init: bool) -> NetId {
    fn nand(out: &mut Netlist, a: NetId, b: NetId) -> NetId {
        out.add_cell(CellKind::Nand2, &[a, b], "obf_g")
    }
    fn nor(out: &mut Netlist, a: NetId, b: NetId) -> NetId {
        out.add_cell(CellKind::Nor2, &[a, b], "obf_g")
    }
    fn inv(out: &mut Netlist, a: NetId) -> NetId {
        out.add_cell(CellKind::Inv, &[a], "obf_g")
    }
    fn and2(out: &mut Netlist, a: NetId, b: NetId) -> NetId {
        let n = nand(out, a, b);
        inv(out, n)
    }
    fn or2(out: &mut Netlist, a: NetId, b: NetId) -> NetId {
        let n = nor(out, a, b);
        inv(out, n)
    }
    match kind {
        CellKind::Buf => {
            let x = inv(out, ins[0]);
            inv(out, x)
        }
        CellKind::Inv => inv(out, ins[0]),
        CellKind::And2 => and2(out, ins[0], ins[1]),
        CellKind::And3 => {
            let x = and2(out, ins[0], ins[1]);
            and2(out, x, ins[2])
        }
        CellKind::And4 => {
            let x = and2(out, ins[0], ins[1]);
            let y = and2(out, ins[2], ins[3]);
            and2(out, x, y)
        }
        CellKind::Nand2 => nand(out, ins[0], ins[1]),
        CellKind::Nand3 => {
            let x = and2(out, ins[0], ins[1]);
            nand(out, x, ins[2])
        }
        CellKind::Nand4 => {
            let x = and2(out, ins[0], ins[1]);
            let y = and2(out, ins[2], ins[3]);
            nand(out, x, y)
        }
        CellKind::Or2 => or2(out, ins[0], ins[1]),
        CellKind::Or3 => {
            let x = or2(out, ins[0], ins[1]);
            or2(out, x, ins[2])
        }
        CellKind::Or4 => {
            let x = or2(out, ins[0], ins[1]);
            let y = or2(out, ins[2], ins[3]);
            or2(out, x, y)
        }
        CellKind::Nor2 => nor(out, ins[0], ins[1]),
        CellKind::Nor3 => {
            let x = or2(out, ins[0], ins[1]);
            nor(out, x, ins[2])
        }
        CellKind::Nor4 => {
            let x = or2(out, ins[0], ins[1]);
            let y = or2(out, ins[2], ins[3]);
            nor(out, x, y)
        }
        CellKind::Xor2 => {
            let n = nand(out, ins[0], ins[1]);
            let x = nand(out, ins[0], n);
            let y = nand(out, ins[1], n);
            nand(out, x, y)
        }
        CellKind::Xnor2 => {
            let n = nand(out, ins[0], ins[1]);
            let x = nand(out, ins[0], n);
            let y = nand(out, ins[1], n);
            let z = nand(out, x, y);
            inv(out, z)
        }
        // ins = [e, t, s]
        CellKind::Mux2 => mux_nand(out, ins[2], ins[1], ins[0]),
        CellKind::Aoi21 => {
            let ab = and2(out, ins[0], ins[1]);
            nor(out, ab, ins[2])
        }
        CellKind::Oai21 => {
            let aorb = or2(out, ins[0], ins[1]);
            nand(out, aorb, ins[2])
        }
        CellKind::Maj3 => {
            let n1 = nand(out, ins[0], ins[1]);
            let n2 = nand(out, ins[0], ins[2]);
            let n3 = nand(out, ins[1], ins[2]);
            let x = and2(out, n1, n2);
            nand(out, x, n3)
        }
        CellKind::Dff => out.add_dff(ins[0], init, nm),
        CellKind::Tie0 => out.add_cell(CellKind::Tie0, &[], nm),
        CellKind::Tie1 => out.add_cell(CellKind::Tie1, &[], nm),
    }
}

fn mux_nand(out: &mut Netlist, s: NetId, t: NetId, e: NetId) -> NetId {
    let ns = out.add_cell(CellKind::Inv, &[s], "obf_g");
    let a = out.add_cell(CellKind::Nand2, &[t, s], "obf_g");
    let bb = out.add_cell(CellKind::Nand2, &[e, ns], "obf_g");
    out.add_cell(CellKind::Nand2, &[a, bb], "obf_g")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdat_netlist::Simulator;
    use pdat_rtl::RtlBuilder;

    fn small_design() -> Netlist {
        let mut b = RtlBuilder::new("small");
        let a = b.input_word("a", 4);
        let c = b.input_word("b", 4);
        let s = b.add(&a, &c);
        let q = b.reg(&s, 0, "q");
        let y = b.xor_word(&q, &a);
        b.output_word("y", &y);
        b.finish()
    }

    #[test]
    fn obfuscation_preserves_behaviour() {
        let nl = small_design();
        let (obf, _map) = obfuscate(&nl, &ObfuscateConfig::default());
        obf.validate().expect("obfuscated netlist valid");
        // Same I/O behaviour over random stimulus.
        let mut s1 = Simulator::new(&nl);
        let mut s2 = Simulator::new(&obf);
        let ins1 = nl.inputs().to_vec();
        let ins2 = obf.inputs().to_vec();
        assert_eq!(ins1.len(), ins2.len());
        let out1: Vec<_> = nl.outputs().to_vec();
        let out2: Vec<_> = obf.outputs().to_vec();
        let mut seed = 0x1234_5678_9ABC_DEF0u64;
        for _ in 0..40 {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            let a1: Vec<_> = ins1
                .iter()
                .enumerate()
                .map(|(i, &n)| (n, seed >> i & 1 == 1))
                .collect();
            let a2: Vec<_> = ins2
                .iter()
                .enumerate()
                .map(|(i, &n)| (n, seed >> i & 1 == 1))
                .collect();
            s1.set_inputs(&a1);
            s2.set_inputs(&a2);
            for ((p1, n1), (p2, n2)) in out1.iter().zip(&out2) {
                assert_eq!(p1, p2);
                assert_eq!(s1.value(*n1), s2.value(*n2), "output {p1} diverged");
            }
            s1.step();
            s2.step();
        }
    }

    #[test]
    fn obfuscation_only_uses_universal_gates() {
        let nl = small_design();
        let (obf, _) = obfuscate(&nl, &ObfuscateConfig::default());
        for (_, c) in obf.cells() {
            assert!(
                matches!(
                    c.kind,
                    CellKind::Nand2
                        | CellKind::Nor2
                        | CellKind::Inv
                        | CellKind::Dff
                        | CellKind::Tie0
                        | CellKind::Tie1
                ),
                "non-universal cell {:?} leaked through",
                c.kind
            );
        }
    }

    #[test]
    fn obfuscation_adds_area() {
        let nl = small_design();
        let (obf, _) = obfuscate(&nl, &ObfuscateConfig::default());
        assert!(obf.gate_count() > nl.gate_count());
    }

    #[test]
    fn internal_names_are_scrambled() {
        let nl = small_design();
        let (obf, _) = obfuscate(&nl, &ObfuscateConfig::default());
        // No net name from the original internals survives (ports excepted).
        let port_names: std::collections::HashSet<&str> = nl
            .inputs()
            .iter()
            .map(|&n| nl.net(n).name.as_str())
            .collect();
        for (_, net) in obf.nets() {
            if port_names.contains(net.name.as_str()) {
                continue;
            }
            assert!(
                net.name.starts_with("obf_"),
                "leaked internal name {}",
                net.name
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let nl = small_design();
        let (o1, _) = obfuscate(&nl, &ObfuscateConfig::default());
        let (o2, _) = obfuscate(&nl, &ObfuscateConfig::default());
        assert_eq!(o1.num_cells(), o2.num_cells());
        let (o3, _) = obfuscate(
            &nl,
            &ObfuscateConfig {
                seed: 99,
                ..Default::default()
            },
        );
        // Different seed very likely changes the structure.
        assert!(o1.num_cells() != o3.num_cells() || o1.num_nets() != o3.num_nets());
    }
}
