//! A gate-level execution harness: drives a generated core netlist with
//! byte-addressable instruction/data memories ("magic" single-cycle
//! memories, matching the cores' combinational memory ports).

use crate::ibex::IbexCore;
use pdat_netlist::{NetId, Simulator};

/// Runs an [`IbexCore`] netlist against in-memory program and data images.
#[derive(Debug)]
pub struct CoreHarness<'a> {
    core: &'a IbexCore,
    sim: Simulator<'a>,
    /// Instruction memory image (byte addressed from 0).
    pub imem: Vec<u8>,
    /// Data memory image (byte addressed from 0).
    pub dmem: Vec<u8>,
    /// Retire trace: `(pc, cycle)` per retired instruction.
    pub retires: Vec<(u32, u64)>,
    cycle: u64,
}

impl<'a> CoreHarness<'a> {
    /// Create a harness with the given program image and data memory size.
    pub fn new(core: &'a IbexCore, program: &[u8], dmem_size: usize) -> CoreHarness<'a> {
        CoreHarness {
            core,
            sim: Simulator::new(&core.netlist),
            imem: program.to_vec(),
            dmem: vec![0; dmem_size],
            retires: Vec::new(),
            cycle: 0,
        }
    }

    fn read_word(&self, nets: &[NetId]) -> u32 {
        nets.iter()
            .enumerate()
            .map(|(i, &n)| (self.sim.value(n) as u32) << i)
            .sum()
    }

    fn fetch(&self, addr: u32) -> u32 {
        let mut w = 0u32;
        for i in 0..4 {
            let a = addr.wrapping_add(i) as usize;
            let byte = if a < self.imem.len() { self.imem[a] } else { 0 };
            w |= (byte as u32) << (8 * i);
        }
        w
    }

    /// Architectural register value (x0..x31).
    pub fn reg(&self, r: usize) -> u32 {
        if r == 0 {
            return 0;
        }
        self.read_word(&self.core.regs[r])
    }

    /// Read a little-endian word from data memory.
    pub fn dmem_word(&self, addr: usize) -> u32 {
        u32::from_le_bytes(self.dmem[addr..addr + 4].try_into().unwrap())
    }

    /// Write a little-endian word into data memory.
    pub fn set_dmem_word(&mut self, addr: usize, value: u32) {
        self.dmem[addr..addr + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Advance one clock cycle; services instruction fetch, load data, and
    /// store commits.
    pub fn step(&mut self) {
        // 1. Present the instruction at the current fetch address.
        let pc = self.read_word(&self.core.instr_addr_out);
        let word = self.fetch(pc);
        let assigns: Vec<(NetId, bool)> = self
            .core
            .instr_in
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, word >> i & 1 == 1))
            .collect();
        self.sim.set_inputs(&assigns);

        // 2. Service a load: present the addressed word on data_rdata.
        let daddr = self.read_word(&self.core.data_addr_out) as usize;
        let rdata = if daddr + 4 <= self.dmem.len() {
            self.dmem_word(daddr)
        } else {
            0
        };
        let assigns: Vec<(NetId, bool)> = self
            .core
            .data_rdata_in
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, rdata >> i & 1 == 1))
            .collect();
        self.sim.set_inputs(&assigns);

        // 3. Commit a store if strobed.
        if self.sim.value(self.core.data_we_out) {
            let wdata = self.read_word(&self.core.data_wdata_out);
            for (i, &ben) in self.core.data_be_out.iter().enumerate() {
                if self.sim.value(ben) {
                    let a = daddr + i;
                    if a < self.dmem.len() {
                        self.dmem[a] = (wdata >> (8 * i)) as u8;
                    }
                }
            }
        }

        // 4. Record retirement.
        if self.sim.value(self.core.retire_out) {
            let rpc = self.read_word(&self.core.retire_pc_out);
            self.retires.push((rpc, self.cycle));
        }

        // 5. Clock edge.
        self.sim.step();
        self.cycle += 1;
    }

    /// Run until `n` instructions have retired (or `max_cycles` elapse).
    ///
    /// Returns the number of retired instructions.
    pub fn run_until_retires(&mut self, n: usize, max_cycles: u64) -> usize {
        while self.retires.len() < n && self.cycle < max_cycles {
            self.step();
        }
        self.retires.len()
    }

    /// Cycles simulated so far.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ibex::build_ibex;
    use pdat_isa::rv32::{encode as e, Assembler};

    fn run(program: Vec<u8>, retires: usize, max_cycles: u64) -> (IbexCoreBox, usize) {
        let core = build_ibex();
        core.netlist.validate().expect("core netlist valid");
        let mut h = CoreHarness::new(&core, &program, 4096);
        let done = h.run_until_retires(retires, max_cycles);
        // Collect registers before dropping the borrow.
        let regs: Vec<u32> = (0..32).map(|r| h.reg(r)).collect();
        let dmem = h.dmem.clone();
        let cycles = h.cycles();
        (
            IbexCoreBox {
                regs,
                dmem,
                cycles,
            },
            done,
        )
    }

    struct IbexCoreBox {
        regs: Vec<u32>,
        dmem: Vec<u8>,
        cycles: u64,
    }

    #[test]
    fn arithmetic_and_logic() {
        let mut a = Assembler::new();
        a.emit(e::addi(1, 0, 100)); // x1 = 100
        a.emit(e::addi(2, 0, -3)); // x2 = -3
        a.emit(e::add(3, 1, 2)); // x3 = 97
        a.emit(e::sub(4, 1, 2)); // x4 = 103
        a.emit(e::xori(5, 1, 0xFF)); // x5 = 100 ^ 255
        a.emit(e::or(6, 1, 2)); // x6 = 100 | -3
        a.emit(e::and(7, 1, 2)); // x7 = 100 & -3
        a.emit(e::slli(8, 1, 4)); // x8 = 1600
        a.emit(e::srai(9, 2, 1)); // x9 = -2
        a.emit(e::slt(10, 2, 1)); // x10 = 1
        a.emit(e::sltu(11, 2, 1)); // x11 = 0 (-3 as unsigned is huge)
        let (s, n) = run(a.finish(), 11, 100);
        assert_eq!(n, 11);
        assert_eq!(s.regs[1], 100);
        assert_eq!(s.regs[2] as i32, -3);
        assert_eq!(s.regs[3], 97);
        assert_eq!(s.regs[4], 103);
        assert_eq!(s.regs[5], 100 ^ 255);
        assert_eq!(s.regs[6] as i32, 100 | -3);
        assert_eq!(s.regs[7] as i32, 100 & -3);
        assert_eq!(s.regs[8], 1600);
        assert_eq!(s.regs[9] as i32, -2);
        assert_eq!(s.regs[10], 1);
        assert_eq!(s.regs[11], 0);
    }

    #[test]
    fn lui_auipc_and_jumps() {
        let mut a = Assembler::new();
        a.emit(e::lui(1, 0x12345)); // x1 = 0x12345000
        a.emit(e::auipc(2, 1)); // x2 = 4 + 0x1000
        let skip = a.new_label();
        a.jal(3, skip); // x3 = pc+4 = 12
        a.emit(e::addi(4, 0, 99)); // skipped
        a.bind(skip);
        a.emit(e::addi(5, 0, 7));
        let (s, n) = run(a.finish(), 4, 100);
        assert_eq!(n, 4);
        assert_eq!(s.regs[1], 0x12345000);
        assert_eq!(s.regs[2], 0x1004);
        assert_eq!(s.regs[3], 12);
        assert_eq!(s.regs[4], 0, "skipped instruction must not retire");
        assert_eq!(s.regs[5], 7);
    }

    #[test]
    fn countdown_loop() {
        // x1 = 5; x2 = 0; while (x1 != 0) { x2 += x1; x1 -= 1 }
        let mut a = Assembler::new();
        let done = a.new_label();
        a.emit(e::addi(1, 0, 5));
        a.emit(e::addi(2, 0, 0));
        let top = a.here();
        a.beq(1, 0, done);
        a.emit(e::add(2, 2, 1));
        a.emit(e::addi(1, 1, -1));
        a.jump_back(top);
        a.bind(done);
        a.emit(e::addi(3, 0, 1));
        let (s, _) = run(a.finish(), 2 + 5 * 4 + 1 + 1, 300);
        assert_eq!(s.regs[2], 15);
        assert_eq!(s.regs[1], 0);
        assert_eq!(s.regs[3], 1);
    }

    #[test]
    fn loads_and_stores_all_widths() {
        let mut a = Assembler::new();
        a.emit(e::addi(1, 0, 64)); // base
        a.emit(e::lui(2, 0xDEADC)); // x2 = 0xDEADC000
        a.emit(e::addi(2, 2, -0x201)); // x2 = 0xDEADBDFF
        a.emit(e::sw(2, 1, 0));
        a.emit(e::lw(3, 1, 0));
        a.emit(e::lb(4, 1, 0)); // 0xFF -> -1
        a.emit(e::lbu(5, 1, 0)); // 0xFF
        a.emit(e::lh(6, 1, 0)); // 0xBDFF -> sign-extended
        a.emit(e::lhu(7, 1, 2)); // 0xDEAD
        a.emit(e::sb(2, 1, 8)); // store byte 0xFF at 72
        a.emit(e::sh(2, 1, 12)); // store half 0xBDFF at 76
        a.emit(e::lw(8, 1, 8));
        a.emit(e::lw(9, 1, 12));
        let (s, n) = run(a.finish(), 13, 200);
        assert_eq!(n, 13);
        assert_eq!(s.regs[2], 0xDEADBDFF);
        assert_eq!(s.regs[3], 0xDEADBDFF);
        assert_eq!(s.regs[4] as i32, -1);
        assert_eq!(s.regs[5], 0xFF);
        assert_eq!(s.regs[6] as i32, 0xBDFFu32 as u16 as i16 as i32);
        assert_eq!(s.regs[7], 0xDEAD);
        assert_eq!(s.regs[8], 0xFF);
        assert_eq!(s.regs[9], 0xBDFF);
        assert_eq!(u32::from_le_bytes(s.dmem[64..68].try_into().unwrap()), 0xDEADBDFF);
    }

    #[test]
    fn multiply_divide_with_stalls() {
        let mut a = Assembler::new();
        a.emit(e::addi(1, 0, -7)); // x1 = -7
        a.emit(e::addi(2, 0, 3)); // x2 = 3
        a.emit(e::mul(3, 1, 2)); // -21
        a.emit(e::mulh(4, 1, 2)); // high of -21 = -1
        a.emit(e::mulhu(5, 1, 2)); // high of (2^32-7)*3
        a.emit(e::mulhsu(6, 1, 2)); // high of -7 * 3 (b unsigned) = -1
        a.emit(e::div(7, 1, 2)); // -2 (round toward zero)
        a.emit(e::rem(8, 1, 2)); // -1
        a.emit(e::divu(9, 1, 2)); // (2^32-7)/3
        a.emit(e::remu(10, 1, 2)); // (2^32-7)%3
        a.emit(e::div(11, 1, 0)); // div by zero -> -1
        a.emit(e::rem(12, 1, 0)); // rem by zero -> dividend
        let (s, n) = run(a.finish(), 12, 1000);
        assert_eq!(n, 12);
        assert_eq!(s.regs[3] as i32, -21);
        assert_eq!(s.regs[4] as i32, -1);
        let au = (-7i32 as u32) as u64;
        assert_eq!(s.regs[5], ((au * 3) >> 32) as u32);
        assert_eq!(s.regs[6] as i32, ((-7i64 * 3) >> 32) as i32);
        assert_eq!(s.regs[7] as i32, -2);
        assert_eq!(s.regs[8] as i32, -1);
        assert_eq!(s.regs[9], ((-7i32 as u32) / 3));
        assert_eq!(s.regs[10], ((-7i32 as u32) % 3));
        assert_eq!(s.regs[11], u32::MAX);
        assert_eq!(s.regs[12] as i32, -7);
        // 8 mul/div at ~33 cycles each dominate: sanity-check stalling.
        assert!(s.cycles > 8 * 30, "expected stalls, got {} cycles", s.cycles);
    }

    #[test]
    fn signed_overflow_division() {
        let mut a = Assembler::new();
        a.emit(e::lui(1, 0x80000)); // x1 = INT_MIN
        a.emit(e::addi(2, 0, -1)); // x2 = -1
        a.emit(e::div(3, 1, 2)); // INT_MIN
        a.emit(e::rem(4, 1, 2)); // 0
        let (s, n) = run(a.finish(), 4, 200);
        assert_eq!(n, 4);
        assert_eq!(s.regs[3], 0x8000_0000);
        assert_eq!(s.regs[4], 0);
    }

    #[test]
    fn compressed_instructions_execute() {
        let mut a = Assembler::new();
        a.emit_c(e::c_li(8, 21)); // x8 = 21
        a.emit_c(e::c_addi(8, 10)); // x8 = 31
        a.emit_c(e::c_mv(9, 8)); // x9 = 31
        a.emit_c(e::c_add(9, 8)); // x9 = 62
        a.emit_c(e::c_slli(9, 1)); // x9 = 124
        a.emit_c(e::c_srli(9, 2)); // x9 = 31
        a.emit(e::addi(10, 9, 1)); // x10 = 32 (32-bit after odd count)
        let (s, n) = run(a.finish(), 7, 100);
        assert_eq!(n, 7);
        assert_eq!(s.regs[8], 31);
        assert_eq!(s.regs[9], 31);
        assert_eq!(s.regs[10], 32);
    }

    #[test]
    fn compressed_branches_and_jumps() {
        let mut a = Assembler::new();
        a.emit_c(e::c_li(8, 0)); // x8 = 0
        // c.bnez x8 forward +6 (should NOT branch)
        a.emit_c(e::c_bnez(8, 6));
        a.emit_c(e::c_addi(8, 1)); // executed: x8 = 1
        // c.beqz x9 (x9==0) forward +4: skip next
        a.emit_c(e::c_beqz(9, 4));
        a.emit_c(e::c_addi(8, 8)); // skipped
        a.emit_c(e::c_li(10, 5)); // x10 = 5
        let (s, n) = run(a.finish(), 5, 100);
        assert_eq!(n, 5);
        assert_eq!(s.regs[8], 1);
        assert_eq!(s.regs[10], 5);
    }

    #[test]
    fn csr_read_write_and_cycle_counter() {
        let mut a = Assembler::new();
        a.emit(e::addi(1, 0, 0x55));
        a.emit(e::csrrw(0, 0x340, 1)); // mscratch = 0x55
        a.emit(e::csrrs(2, 0x340, 0)); // x2 = mscratch
        a.emit(e::csrrwi(3, 0x340, 0xA)); // x3 = 0x55, mscratch = 0xA
        a.emit(e::csrrs(4, 0x340, 0)); // x4 = 0xA
        a.emit(e::csrrs(5, 0xB00, 0)); // x5 = mcycle (nonzero by now)
        let (s, n) = run(a.finish(), 6, 100);
        assert_eq!(n, 6);
        assert_eq!(s.regs[2], 0x55);
        assert_eq!(s.regs[3], 0x55);
        assert_eq!(s.regs[4], 0xA);
        assert!(s.regs[5] > 0, "mcycle should count");
    }

    #[test]
    fn ecall_traps_to_mtvec() {
        let mut a = Assembler::new();
        a.emit(e::addi(1, 0, 0x40)); // handler address
        a.emit(e::csrrw(0, 0x305, 1)); // mtvec = 0x40
        a.emit(e::ecall());
        // Pad until 0x40.
        while a.here() < 0x40 {
            a.emit(e::addi(0, 0, 0));
        }
        // Handler:
        a.emit(e::csrrs(2, 0x341, 0)); // x2 = mepc (= 8)
        a.emit(e::csrrs(3, 0x342, 0)); // x3 = mcause (= 11)
        let (s, _) = run(a.finish(), 5, 200);
        assert_eq!(s.regs[2], 8, "mepc records the ecall pc");
        assert_eq!(s.regs[3], 11, "mcause = ecall from M-mode");
    }

    #[test]
    fn fence_is_a_nop() {
        let mut a = Assembler::new();
        a.emit(e::addi(1, 0, 1));
        a.emit(e::fence());
        a.emit(e::fence_i());
        a.emit(e::addi(2, 0, 2));
        let (s, n) = run(a.finish(), 4, 50);
        assert_eq!(n, 4);
        assert_eq!(s.regs[1], 1);
        assert_eq!(s.regs[2], 2);
    }
}

/// Runs a [`crate::CortexM0Core`] netlist against program/data images.
#[derive(Debug)]
pub struct ThumbHarness<'a> {
    core: &'a crate::cortexm0::CortexM0Core,
    sim: Simulator<'a>,
    /// Instruction memory (byte addressed from 0).
    pub imem: Vec<u8>,
    /// Data memory (byte addressed from 0).
    pub dmem: Vec<u8>,
    /// Retired-instruction count.
    pub retired: usize,
    cycle: u64,
}

impl<'a> ThumbHarness<'a> {
    /// Create a harness over the core.
    pub fn new(
        core: &'a crate::cortexm0::CortexM0Core,
        program: &[u8],
        dmem_size: usize,
    ) -> ThumbHarness<'a> {
        ThumbHarness {
            core,
            sim: Simulator::new(&core.netlist),
            imem: program.to_vec(),
            dmem: vec![0; dmem_size],
            retired: 0,
            cycle: 0,
        }
    }

    fn read_word(&self, nets: &[NetId]) -> u32 {
        nets.iter()
            .enumerate()
            .map(|(i, &n)| (self.sim.value(n) as u32) << i)
            .sum()
    }

    /// Architectural register r0..r14.
    pub fn reg(&self, r: usize) -> u32 {
        self.read_word(&self.core.regs[r])
    }

    /// Little-endian data memory word.
    pub fn dmem_word(&self, addr: usize) -> u32 {
        u32::from_le_bytes(self.dmem[addr..addr + 4].try_into().unwrap())
    }

    /// Advance one cycle.
    pub fn step(&mut self) {
        let pc = self.read_word(&self.core.instr_addr_out);
        let mut hw = 0u16;
        for i in 0..2 {
            let a = pc.wrapping_add(i) as usize;
            if a < self.imem.len() {
                hw |= (self.imem[a] as u16) << (8 * i);
            }
        }
        let assigns: Vec<(NetId, bool)> = self
            .core
            .instr_in
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, hw >> i & 1 == 1))
            .collect();
        self.sim.set_inputs(&assigns);

        let daddr = self.read_word(&self.core.data_addr_out) as usize;
        let rdata = if daddr + 4 <= self.dmem.len() {
            self.dmem_word(daddr)
        } else {
            0
        };
        let assigns: Vec<(NetId, bool)> = self
            .core
            .data_rdata_in
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, rdata >> i & 1 == 1))
            .collect();
        self.sim.set_inputs(&assigns);

        if self.sim.value(self.core.data_we_out) {
            let wdata = self.read_word(&self.core.data_wdata_out);
            for (i, &ben) in self.core.data_be_out.iter().enumerate() {
                if self.sim.value(ben) {
                    let a = daddr + i;
                    if a < self.dmem.len() {
                        self.dmem[a] = (wdata >> (8 * i)) as u8;
                    }
                }
            }
        }

        if self.sim.value(self.core.retire_out) {
            self.retired += 1;
        }
        self.sim.step();
        self.cycle += 1;
    }

    /// Run until `n` retires or `max_cycles`.
    pub fn run_until_retires(&mut self, n: usize, max_cycles: u64) -> usize {
        while self.retired < n && self.cycle < max_cycles {
            self.step();
        }
        self.retired
    }

    /// Cycles elapsed.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }
}

#[cfg(test)]
mod m0_tests {
    use super::*;
    use crate::cortexm0::build_cortexm0;
    use pdat_isa::armv6m::{encode::*, ThumbAssembler};

    struct M0State {
        regs: Vec<u32>,
        dmem: Vec<u8>,
        cycles: u64,
    }

    fn run(program: Vec<u8>, retires: usize, max_cycles: u64) -> (M0State, usize) {
        let core = build_cortexm0();
        core.netlist.validate().expect("m0 netlist valid");
        let mut h = ThumbHarness::new(&core, &program, 4096);
        let n = h.run_until_retires(retires, max_cycles);
        let regs = (0..15).map(|r| h.reg(r)).collect();
        (
            M0State {
                regs,
                dmem: h.dmem.clone(),
                cycles: h.cycles(),
            },
            n,
        )
    }

    #[test]
    fn mov_add_sub_flags() {
        let mut a = ThumbAssembler::new();
        a.emit(t_mov_imm(0, 10)); // r0 = 10
        a.emit(t_mov_imm(1, 3)); // r1 = 3
        a.emit(t_add_reg(2, 0, 1)); // r2 = 13
        a.emit(t_sub_reg(3, 0, 1)); // r3 = 7
        a.emit(t_add_imm3(4, 3, 7)); // r4 = 14
        a.emit(t_sub_imm8(4, 10)); // r4 = 4
        a.emit(t_rsb(5, 1)); // r5 = -3
        let (s, n) = run(a.finish(), 7, 100);
        assert_eq!(n, 7);
        assert_eq!(s.regs[2], 13);
        assert_eq!(s.regs[3], 7);
        assert_eq!(s.regs[4], 4);
        assert_eq!(s.regs[5] as i32, -3);
    }

    #[test]
    fn logic_and_shifts() {
        let mut a = ThumbAssembler::new();
        a.emit(t_mov_imm(0, 0xF0));
        a.emit(t_mov_imm(1, 0x3C));
        a.emit(t_mov_reg(2, 0));
        a.emit(t_and(2, 1)); // r2 = 0x30
        a.emit(t_mov_reg(3, 0));
        a.emit(t_orr(3, 1)); // r3 = 0xFC
        a.emit(t_mov_reg(4, 0));
        a.emit(t_eor(4, 1)); // r4 = 0xCC
        a.emit(t_mvn(5, 0)); // r5 = !0xF0
        a.emit(t_lsl_imm(6, 0, 4)); // r6 = 0xF00
        a.emit(t_lsr_imm(7, 0, 4)); // r7 = 0x0F
        let (s, n) = run(a.finish(), 11, 100);
        assert_eq!(n, 11);
        assert_eq!(s.regs[2], 0x30);
        assert_eq!(s.regs[3], 0xFC);
        assert_eq!(s.regs[4], 0xCC);
        assert_eq!(s.regs[5], !0xF0u32);
        assert_eq!(s.regs[6], 0xF00);
        assert_eq!(s.regs[7], 0x0F);
    }

    #[test]
    fn compare_and_conditional_branches() {
        let mut a = ThumbAssembler::new();
        let is_less = a.new_label();
        let done = a.new_label();
        a.emit(t_mov_imm(0, 3));
        a.emit(t_mov_imm(1, 5));
        a.emit(t_cmp_reg(0, 1)); // 3 < 5
        a.b_cond(Cond::Lt, is_less);
        a.emit(t_mov_imm(2, 0)); // skipped
        a.b(done);
        a.bind(is_less);
        a.emit(t_mov_imm(2, 1)); // r2 = 1
        a.bind(done);
        a.emit(t_mov_imm(3, 9));
        let (s, n) = run(a.finish(), 6, 100);
        assert_eq!(n, 6);
        assert_eq!(s.regs[2], 1);
        assert_eq!(s.regs[3], 9);
    }

    #[test]
    fn loop_with_subs_and_bne() {
        // r0 = 5; r1 = 0; do { r1 += r0; r0 -= 1 } while (r0 != 0)
        let mut a = ThumbAssembler::new();
        a.emit(t_mov_imm(0, 5));
        a.emit(t_mov_imm(1, 0));
        let top = a.here();
        a.emit(t_add_reg(1, 1, 0));
        a.emit(t_sub_imm8(0, 1)); // sets flags
        // bne top
        let off = top as i64 - (a.here() as i64 + 4);
        a.emit(t_b_cond(Cond::Ne, off as i32));
        a.emit(t_mov_imm(2, 1));
        let (s, _) = run(a.finish(), 2 + 5 * 3 + 1, 200);
        assert_eq!(s.regs[1], 15);
        assert_eq!(s.regs[0], 0);
        assert_eq!(s.regs[2], 1);
    }

    #[test]
    fn memory_word_byte_half() {
        let mut a = ThumbAssembler::new();
        a.emit(t_mov_imm(0, 64)); // base
        a.emit(t_mov_imm(1, 0xAB));
        a.emit(t_lsl_imm(1, 1, 8)); // r1 = 0xAB00
        a.emit(t_add_imm8(1, 0xCD)); // r1 = 0xABCD
        a.emit(t_str_imm(1, 0, 0)); // [64] = 0xABCD
        a.emit(t_ldr_imm(2, 0, 0)); // r2 = 0xABCD
        a.emit(t_ldrb_imm(3, 0, 0)); // r3 = 0xCD
        a.emit(t_ldrh_imm(4, 0, 0)); // r4 = 0xABCD
        a.emit(t_strb_imm(1, 0, 8)); // [72] = 0xCD
        a.emit(t_ldr_imm(5, 0, 8)); // r5 = 0xCD
        let (s, n) = run(a.finish(), 10, 100);
        assert_eq!(n, 10);
        assert_eq!(s.regs[2], 0xABCD);
        assert_eq!(s.regs[3], 0xCD);
        assert_eq!(s.regs[4], 0xABCD);
        assert_eq!(s.regs[5], 0xCD);
        assert_eq!(u32::from_le_bytes(s.dmem[64..68].try_into().unwrap()), 0xABCD);
    }

    #[test]
    fn muls_stalls_and_multiplies() {
        let mut a = ThumbAssembler::new();
        a.emit(t_mov_imm(0, 7));
        a.emit(t_mov_imm(1, 6));
        a.emit(t_mul(0, 1)); // r0 = 42
        a.emit(t_mov_imm(2, 1));
        let (s, n) = run(a.finish(), 4, 200);
        assert_eq!(n, 4);
        assert_eq!(s.regs[0], 42);
        assert!(s.cycles > 32, "muls must stall, took {} cycles", s.cycles);
    }

    #[test]
    fn push_pop_roundtrip() {
        let mut a = ThumbAssembler::new();
        a.emit(t_mov_imm(0, 0x80)); // sp value
        // mov sp, r0 : hi-reg MOV with Rd=SP (encoding 0x4685)
        a.emit(0x4685);
        a.emit(t_mov_imm(1, 11));
        a.emit(t_mov_imm(2, 22));
        a.emit(t_push(0b0000_0110)); // push {r1, r2}
        a.emit(t_mov_imm(1, 0));
        a.emit(t_mov_imm(2, 0));
        a.emit(t_pop(0b0000_0110)); // pop {r1, r2}
        let (s, n) = run(a.finish(), 8, 200);
        assert_eq!(n, 8);
        assert_eq!(s.regs[1], 11);
        assert_eq!(s.regs[2], 22);
        assert_eq!(s.regs[13], 0x80, "sp restored");
    }

    #[test]
    fn bl_and_bx_lr() {
        let mut a = ThumbAssembler::new();
        let func = a.new_label();
        a.emit(t_mov_imm(0, 1));
        a.bl(func);
        a.emit(t_mov_imm(2, 3)); // after return
        a.emit(t_nop());
        a.bind(func);
        a.emit(t_mov_imm(1, 2));
        a.emit(t_bx(14)); // return via LR
        // retires: mov, bl(pair counts 2 retire strobes), mov r1, bx, mov r2
        let (s, _) = run(a.finish(), 6, 100);
        assert_eq!(s.regs[0], 1);
        assert_eq!(s.regs[1], 2);
        assert_eq!(s.regs[2], 3);
        assert_eq!(s.regs[14] & 1, 1, "LR has thumb bit");
    }

    #[test]
    fn extends_and_reverses() {
        let mut a = ThumbAssembler::new();
        a.emit(t_mov_imm(0, 0xFF));
        a.emit(t_sxtb(1, 0)); // -1
        a.emit(t_uxtb(2, 0)); // 0xFF
        a.emit(t_lsl_imm(3, 0, 8)); // 0xFF00
        a.emit(t_sxth(4, 3)); // 0xFFFFFF00
        a.emit(t_rev(5, 3)); // 0x00FF0000
        let (s, n) = run(a.finish(), 6, 100);
        assert_eq!(n, 6);
        assert_eq!(s.regs[1], u32::MAX);
        assert_eq!(s.regs[2], 0xFF);
        assert_eq!(s.regs[4], 0xFFFF_FF00);
        assert_eq!(s.regs[5], 0x00FF_0000);
    }

    #[test]
    fn hints_and_barriers_are_nops() {
        let mut a = ThumbAssembler::new();
        a.emit(t_mov_imm(0, 1));
        a.emit(t_nop());
        a.emit(0xBF20); // wfe
        a.emit(0xBF40); // sev
        a.emit(t_mov_imm(1, 2));
        let (s, n) = run(a.finish(), 5, 100);
        assert_eq!(n, 5);
        assert_eq!(s.regs[0], 1);
        assert_eq!(s.regs[1], 2);
    }
}
