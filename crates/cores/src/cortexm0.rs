//! A Cortex-M0-class core generator: 3-stage (IF/DE/EX), in-order ARMv6-M
//! (Thumb) with 16 registers and NZCV flags.
//!
//! Matches the paper's Table II row: 3 stages, issue width 1, statically
//! not-taken branches, 16 registers, ~10k gates. ARMv6-M is *not* modular —
//! the decode/flag/system logic here is deliberately interwoven so that no
//! parameterization could remove instruction support; only PDAT-style
//! analysis can.
//!
//! Functional scope (exercised by the gate-level tests and the MiBench-like
//! Thumb kernels): data processing with flags, shifts with carry-out,
//! compares, all 14 branch conditions, B/BX/BLX/BL, loads/stores
//! (imm/reg/byte/half/signed), PUSH/POP/LDM/STM via an iterative state
//! machine, iterative MULS, extends and byte-reverses, hi-register
//! ADD/MOV/CMP, ADR and SP-relative adds. Barriers, hints, and system forms
//! (MRS/MSR/CPS) execute as no-ops; SVC/BKPT/UDF raise the fault output.

use pdat_isa::armv6m::ThumbInstr;
use pdat_netlist::{NetId, Netlist};
use pdat_rtl::{RtlBuilder, Word};

/// Handles to the generated Cortex-M0-class core.
#[derive(Debug, Clone)]
pub struct CortexM0Core {
    /// The gate-level netlist.
    pub netlist: Netlist,
    /// Instruction fetch halfword inputs (16 bits).
    pub instr_in: Vec<NetId>,
    /// Load data inputs.
    pub data_rdata_in: Vec<NetId>,
    /// Fetch address outputs.
    pub instr_addr_out: Vec<NetId>,
    /// Retire strobe.
    pub retire_out: NetId,
    /// Fault strobe (SVC/BKPT/UDF or unknown encoding executed).
    pub fault_out: NetId,
    /// The fetch→decode register input nets (cutpoint location).
    pub cut_fetch: Vec<NetId>,
    /// Register nets r0..r15 (r15 is the EX-stage pc view).
    pub regs: Vec<Vec<NetId>>,
    /// Data port nets for the harness.
    pub data_addr_out: Vec<NetId>,
    /// Store data nets.
    pub data_wdata_out: Vec<NetId>,
    /// Byte enable nets.
    pub data_be_out: Vec<NetId>,
    /// Store strobe.
    pub data_we_out: NetId,
}

/// Generate the core.
pub fn build_cortexm0() -> CortexM0Core {
    let mut b = RtlBuilder::new("cortexm0_like");

    let instr_i = b.input_word("instr_i", 16);
    let data_rdata = b.input_word("data_rdata_i", 32);
    let zero = b.zero();
    let one = b.one();

    let fwd = |b: &mut RtlBuilder, name: &str| -> NetId { b.raw_net(name) };
    let fwd_w = |b: &mut RtlBuilder, name: &str, w: usize| -> Word {
        (0..w).map(|i| b.raw_net(&format!("{name}{i}"))).collect()
    };

    let stall_w = fwd(&mut b, "stall_w");
    let redirect_w = fwd(&mut b, "redirect_w");
    let target_w = fwd_w(&mut b, "target_w", 32);

    // ---- fetch ----
    let pc_f_fb = fwd_w(&mut b, "pc_f_fb", 32);
    let two = b.constant(2, 32);
    let pc_plus = b.add(&pc_f_fb, &two);
    let held = b.mux_word(stall_w, &pc_f_fb, &pc_plus);
    let next_pc_f = b.mux_word(redirect_w, &target_w, &held);
    let pc_f = b.reg(&next_pc_f, 0, "pc_f");
    b.bind(&pc_f_fb, &pc_f);

    // ---- IF/DE register (cutpoint location) ----
    let fd_d: Word = instr_i
        .bits()
        .iter()
        .enumerate()
        .map(|(i, &bit)| b.named_buf(bit, &format!("fd_instr_d[{i}]")))
        .collect();
    let not_stall = b.not(stall_w);
    let de_hw = b.reg_en(&fd_d, not_stall, 0, "de_hw");
    let de_pc = b.reg_en(&pc_f, not_stall, 0, "de_pc");
    let not_redirect = b.not(redirect_w);
    let de_valid_fb = fwd(&mut b, "de_valid_fb");
    let de_valid_d = b.mux(stall_w, de_valid_fb, not_redirect);
    let de_valid = b.dff(de_valid_d, false, "de_valid");
    b.bind_bit(de_valid_fb, de_valid);

    // ---- DE: decode all 83 forms, register the selects into EX ----
    let mut de_sel = std::collections::HashMap::new();
    for f in ThumbInstr::ALL {
        if f.is_32bit() {
            continue; // 32-bit forms identified by prefix below
        }
        let p = f.pattern();
        let mut hit = b.match_pattern(&de_hw, p.mask as u64, p.value as u64);
        // Priority: clear the hit if an earlier overlapping form matches.
        for g in ThumbInstr::ALL {
            if g == f {
                break;
            }
            if g.is_32bit() {
                continue;
            }
            if g.pattern().overlaps(&p) {
                let gp = g.pattern();
                let ghit = b.match_pattern(&de_hw, gp.mask as u64, gp.value as u64);
                let ng = b.not(ghit);
                hit = b.and2(hit, ng);
            }
        }
        de_sel.insert(f, hit);
    }
    // BCond excludes cond = 111x (UDF/SVC space).
    {
        let c3 = de_hw.bit(11);
        let c2 = de_hw.bit(10);
        let c1 = de_hw.bit(9);
        let hi = b.and_many(&[c3, c2, c1]);
        let nhi = b.not(hi);
        let old = de_sel[&ThumbInstr::BCond];
        let fixed = b.and2(old, nhi);
        de_sel.insert(ThumbInstr::BCond, fixed);
    }
    // 32-bit prefix detector: hw[15:11] in {11101, 11110, 11111}.
    let is32_prefix = {
        let p1 = b.match_pattern(&de_hw, 0xF800, 0xE800);
        let p2 = b.match_pattern(&de_hw, 0xF000, 0xF000);
        b.or2(p1, p2)
    };

    // Register the decode outputs into EX.
    let mut ex_sel = std::collections::HashMap::new();
    for f in ThumbInstr::ALL {
        if f.is_32bit() {
            continue;
        }
        let gated = b.and2(de_sel[&f], de_valid);
        let q = b.reg_en(
            &Word::from_bits(vec![gated]),
            not_stall,
            0,
            &format!("ex_sel_{}", f.mnemonic().replace(['(', ')', ',', '<', '>'], "_")),
        );
        ex_sel.insert(f, q.bit(0));
    }
    let de_is32 = b.and2(is32_prefix, de_valid);
    let ex_is32 = b
        .reg_en(&Word::from_bits(vec![de_is32]), not_stall, 0, "ex_is32")
        .bit(0);
    let ex_hw = b.reg_en(&de_hw, not_stall, 0, "ex_hw");
    let ex_pc = b.reg_en(&de_pc, not_stall, 0, "ex_pc");
    let ex_valid_fb = fwd(&mut b, "ex_valid_fb");
    let de_pass = b.and2(de_valid, not_redirect);
    let ex_valid_d = b.mux(stall_w, ex_valid_fb, de_pass);
    let ex_valid = b.dff(ex_valid_d, false, "ex_valid");
    b.bind_bit(ex_valid_fb, ex_valid);

    let m = |f: ThumbInstr| -> NetId { ex_sel[&f] };
    use ThumbInstr::*;

    // ---- BL pairing state ----
    let bl_pending_fb = fwd(&mut b, "bl_pending_fb");
    let bl_hw1_fb = fwd_w(&mut b, "bl_hw1_fb", 16);

    // ---- register file (r0..r14 real, r15 = pc view) ----
    let rf_wen = fwd(&mut b, "rf_wen_w");
    let rf_waddr = fwd_w(&mut b, "rf_waddr_w", 4);
    let rf_wdata = fwd_w(&mut b, "rf_wdata_w", 32);
    let mut regs: Vec<Word> = Vec::with_capacity(16);
    for r in 0..15 {
        let hit = b.decode_index(&rf_waddr, r);
        let we = b.and2(hit, rf_wen);
        regs.push(b.reg_en(&rf_wdata, we, 0, &format!("r{r}")));
    }
    // r15 reads as pc + 4 (Thumb PC offset).
    let four = b.constant(4, 32);
    let pc_read = b.add(&ex_pc, &four);
    regs.push(pc_read.clone());

    // Field extraction.
    let rd3 = ex_hw.slice(0, 3);
    let rn3 = ex_hw.slice(3, 6);
    let rm3 = ex_hw.slice(6, 9);
    let rdn8 = ex_hw.slice(8, 11);
    let imm8: Word = ex_hw.slice(0, 8);
    let imm5 = ex_hw.slice(6, 11);
    let imm3 = ex_hw.slice(6, 9);
    // Hi-register fields: Rd = {hw[7], hw[2:0]}, Rm = hw[6:3].
    let rd_hi: Word = [ex_hw.bit(0), ex_hw.bit(1), ex_hw.bit(2), ex_hw.bit(7)]
        .into_iter()
        .collect();
    let rm_hi = ex_hw.slice(3, 7);

    let rd3w = b.extend(&rd3, 4, false);
    let rn3w = b.extend(&rn3, 4, false);
    let rm3w = b.extend(&rm3, 4, false);
    let rdn8w = b.extend(&rdn8, 4, false);

    // Operand source selection.
    let use_rdn8 = {
        let a = m(MovImm);
        let a = b.or2(a, m(CmpImm));
        let a = b.or2(a, m(AddsImm8));
        let a = b.or2(a, m(SubsImm8));
        let a = b.or2(a, m(LdrLit));
        let a = b.or2(a, m(LdrSp));
        let a = b.or2(a, m(StrSp));
        let a = b.or2(a, m(Adr));
        let a = b.or2(a, m(AddSpImmT1));
        let a = b.or2(a, m(Ldm));
        b.or2(a, m(Stm))
    };
    let use_hi = {
        let a = m(AddRegHigh);
        let a = b.or2(a, m(AddSpReg));
        let a = b.or2(a, m(CmpRegHigh));
        let a = b.or2(a, m(MovRegHigh));
        let a = b.or2(a, m(Bx));
        b.or2(a, m(BlxReg))
    };

    // Read addresses.
    let raddr_a = {
        // First operand register: Rn (3-bit), or Rd for 2-operand DP forms,
        // or Rd(hi) for hi-reg ops, or Rdn8 for imm8 ops, or SP for
        // SP-relative.
        let dp2 = {
            // forms where Rd is also a source (Rdn)
            let x = m(Ands);
            let x = b.or2(x, m(Eors));
            let x = b.or2(x, m(LslsReg));
            let x = b.or2(x, m(LsrsReg));
            let x = b.or2(x, m(AsrsReg));
            let x = b.or2(x, m(Adcs));
            let x = b.or2(x, m(Sbcs));
            let x = b.or2(x, m(Rors));
            let x = b.or2(x, m(Orrs));
            let x = b.or2(x, m(Bics));
            let x = b.or2(x, m(AddsImm8));
            let x = b.or2(x, m(SubsImm8));
            let x = b.or2(x, m(CmpImm));
            let x = b.or2(x, m(CmpReg));
            let x = b.or2(x, m(Tst));
            let x = b.or2(x, m(Cmn));
            b.or2(x, m(Muls))
        };
        let base = b.mux_word(dp2, &rd3w, &rn3w);
        let base = b.mux_word(use_rdn8, &rdn8w, &base);
        let sp = b.constant(13, 4);
        let use_sp = {
            let x = m(LdrSp);
            let x = b.or2(x, m(StrSp));
            let x = b.or2(x, m(AddSpImmT1));
            let x = b.or2(x, m(AddSpImmT2));
            let x = b.or2(x, m(SubSpImm));
            let x = b.or2(x, m(Push));
            b.or2(x, m(Pop))
        };
        let base = b.mux_word(use_sp, &sp, &base);
        b.mux_word(use_hi, &rd_hi, &base)
    };
    let raddr_b = {
        // Second operand register: Rm (3-bit), or Rm(hi), or Rn for
        // Rdn-style DP (the register operand sits in bits 5:3), or Rd for
        // stores (store data).
        let store_rt = {
            let x = m(StrImm);
            let x = b.or2(x, m(StrReg));
            let x = b.or2(x, m(StrbImm));
            let x = b.or2(x, m(StrbReg));
            let x = b.or2(x, m(StrhImm));
            b.or2(x, m(StrhReg))
        };
        let base = b.mux_word(store_rt, &rd3w, &rn3w);
        let strsp = b.mux_word(m(StrSp), &rdn8w, &base);
        b.mux_word(use_hi, &rm_hi, &strsp)
    };
    let op_a = b.regfile_read(&regs, &raddr_a);
    let op_b_reg = b.regfile_read(&regs, &raddr_b);
    // Third read port: Rm in bits 8:6 (register-offset memory forms and
    // three-register adds/subs).
    let rm3w4 = b.extend(&rm3w, 4, false);
    let op_idx = b.regfile_read(&regs, &rm3w4);

    // Immediate operand.
    let imm8_32 = b.extend(&imm8, 32, false);
    let imm3_32 = b.extend(&imm3, 32, false);
    let use_imm8 = {
        let x = m(MovImm);
        let x = b.or2(x, m(CmpImm));
        let x = b.or2(x, m(AddsImm8));
        b.or2(x, m(SubsImm8))
    };
    let use_imm3 = b.or2(m(AddsImm3), m(SubsImm3));
    let mut op_b = op_b_reg.clone();
    // Three-register adds/subs take Rm from bits 8:6.
    let three_reg = b.or2(m(AddsReg), m(SubsReg));
    op_b = b.mux_word(three_reg, &op_idx, &op_b);
    op_b = b.mux_word(use_imm8, &imm8_32, &op_b);
    op_b = b.mux_word(use_imm3, &imm3_32, &op_b);

    // ---- flags ----
    let flag_n_fb = fwd(&mut b, "flag_n_fb");
    let flag_z_fb = fwd(&mut b, "flag_z_fb");
    let flag_c_fb = fwd(&mut b, "flag_c_fb");
    let flag_v_fb = fwd(&mut b, "flag_v_fb");

    // ---- ALU ----
    let is_sub_like = {
        let x = m(SubsReg);
        let x = b.or2(x, m(SubsImm3));
        let x = b.or2(x, m(SubsImm8));
        let x = b.or2(x, m(CmpImm));
        let x = b.or2(x, m(CmpReg));
        let x = b.or2(x, m(CmpRegHigh));
        let x = b.or2(x, m(Rsbs));
        b.or2(x, m(SubSpImm))
    };
    let is_adc = m(Adcs);
    let is_sbc = m(Sbcs);
    // RSBS computes 0 - Rn: swap operands.
    let zero32 = b.constant(0, 32);
    let alu_a = b.mux_word(m(Rsbs), &zero32, &op_a);
    let alu_b = {
        let rsb_b = b.mux_word(m(Rsbs), &op_a, &op_b);
        // SP-immediate forms use shifted immediates.
        let imm7: Word = ex_hw.slice(0, 7);
        let imm7_sp = {
            let w = b.extend(&imm7, 30, false);
            let lo = b.constant(0, 2);
            lo.concat(&w)
        };
        let sp_imm = b.or2(m(AddSpImmT2), m(SubSpImm));
        let x = b.mux_word(sp_imm, &imm7_sp, &rsb_b);
        let imm8_w = {
            let w = b.extend(&imm8, 30, false);
            let lo = b.constant(0, 2);
            lo.concat(&w)
        };
        let imm8_words = b.or2(m(AddSpImmT1), m(Adr));
        b.mux_word(imm8_words, &imm8_w, &x)
    };
    // ADR uses aligned PC as operand A.
    let pc_al = {
        let mut bits = pc_read.bits().to_vec();
        bits[0] = zero;
        bits[1] = zero;
        Word::from_bits(bits)
    };
    let alu_a = b.mux_word(m(Adr), &pc_al, &alu_a);

    let sub_sel = {
        let x = b.or2(is_sub_like, is_sbc);
        x
    };
    let bnot = b.not_word(&alu_b);
    let addend = b.mux_word(sub_sel, &bnot, &alu_b);
    let cin = {
        // add: 0; sub: 1; adc: C; sbc: C.
        let carryish = b.or2(is_adc, is_sbc);
        let base = b.mux(carryish, flag_c_fb, zero);
        let nc = b.not(carryish);
        let plain_sub = b.and2(is_sub_like, nc);
        b.or2(base, plain_sub)
    };
    let (sum, cout) = b.add_with_carry(&alu_a, &addend, Some(cin));
    let v_add = {
        // overflow: same sign operands, different sign result.
        let sa = alu_a.msb();
        let sb_ = addend.msb();
        let sr = sum.msb();
        let same = b.xor2(sa, sb_);
        let nsame = b.not(same);
        let diff_r = b.xor2(sa, sr);
        b.and2(nsame, diff_r)
    };

    // Logic ops.
    let and_r = b.and_word(&op_a, &op_b);
    let bic_r = {
        let nb = b.not_word(&op_b);
        b.and_word(&op_a, &nb)
    };
    let or_r = b.or_word(&op_a, &op_b);
    let xor_r = b.xor_word(&op_a, &op_b);
    let mvn_r = b.not_word(&op_b);

    // Shifter (33-bit for carry-out).
    let shift_amt_imm = b.extend(&imm5, 8, false);
    let shift_amt_reg = op_b_reg.slice(0, 8);
    let use_reg_shift = {
        let x = m(LslsReg);
        let x = b.or2(x, m(LsrsReg));
        let x = b.or2(x, m(AsrsReg));
        b.or2(x, m(Rors))
    };
    let shift_amt = b.mux_word(use_reg_shift, &shift_amt_reg, &shift_amt_imm);
    let samt5 = shift_amt.slice(0, 5);
    // Shift source: Rm (bits 5:3) for imm forms, Rdn for reg forms.
    let shift_src = {
        let rm_val = b.regfile_read(&regs, &rn3w);
        b.mux_word(use_reg_shift, &op_a, &rm_val)
    };
    // LSL with carry: 33-bit left shift.
    let src33 = b.extend(&shift_src, 33, false);
    let lsl33 = b.shl(&src33, &samt5);
    let lsl_r = lsl33.slice(0, 32);
    let lsl_c = lsl33.bit(32);
    // LSR with carry: {src,0} >> s, carry at bit 0.
    let srcr33: Word = {
        let mut bits = vec![zero];
        bits.extend_from_slice(shift_src.bits());
        Word::from_bits(bits)
    };
    let lsr33 = b.shr(&srcr33, &samt5);
    let lsr_r = lsr33.slice(1, 33);
    let lsr_c = lsr33.bit(0);
    let asr33 = b.sar(&srcr33, &samt5);
    let asr_r = asr33.slice(1, 33);
    let asr_c = asr33.bit(0);
    // ROR: r = (src >> s) | (src << (32-s)).
    let ror_r = {
        let right = b.shr(&shift_src, &samt5);
        let thirty_two = b.constant(32, 6);
        let samt6 = b.extend(&samt5, 6, false);
        let inv = b.sub(&thirty_two, &samt6);
        let inv5 = inv.slice(0, 5);
        let left = b.shl(&shift_src, &inv5);
        b.or_word(&right, &left)
    };
    let ror_c = ror_r.msb();
    let shift_zero = b.is_zero(&samt5);

    // Extends / reverses.
    let sxtb_r = {
        let lo = op_b_reg.slice(0, 8);
        b.extend(&lo, 32, true)
    };
    let uxtb_r = {
        let lo = op_b_reg.slice(0, 8);
        b.extend(&lo, 32, false)
    };
    let sxth_r = {
        let lo = op_b_reg.slice(0, 16);
        b.extend(&lo, 32, true)
    };
    let uxth_r = {
        let lo = op_b_reg.slice(0, 16);
        b.extend(&lo, 32, false)
    };
    let byte = |w: &Word, i: usize| w.slice(8 * i, 8 * i + 8);
    let rev_r = byte(&op_b_reg, 3)
        .concat(&byte(&op_b_reg, 2))
        .concat(&byte(&op_b_reg, 1))
        .concat(&byte(&op_b_reg, 0));
    let rev16_r = byte(&op_b_reg, 1)
        .concat(&byte(&op_b_reg, 0))
        .concat(&byte(&op_b_reg, 3))
        .concat(&byte(&op_b_reg, 2));
    let revsh_r = {
        let lo = byte(&op_b_reg, 1).concat(&byte(&op_b_reg, 0));
        b.extend(&lo, 32, true)
    };

    // The shift source register for extend/rev forms is Rm = bits 5:3
    // (op_b_reg reads rn3 for non-store forms — same field). Good.

    // ---- iterative MULS ----
    let md_busy_fb = fwd(&mut b, "md_busy_fb");
    let md_cnt_fb = fwd_w(&mut b, "md_cnt_fb", 6);
    let md_lo_fb = fwd_w(&mut b, "md_lo_fb", 32);
    let md_hi_fb = fwd_w(&mut b, "md_hi_fb", 32);
    let is_mul = m(Muls);
    let mul_req = b.and2(is_mul, ex_valid);
    let nb_busy = b.not(md_busy_fb);
    let mul_start = b.and2(mul_req, nb_busy);
    let addend_m: Word = {
        let lo0 = md_lo_fb.bit(0);
        op_a.bits().iter().map(|&x| b.and2(x, lo0)).collect()
    };
    let (msum, mc) = b.add_with_carry(&md_hi_fb, &addend_m, None);
    let m_next_hi: Word = {
        let mut bits: Vec<NetId> = msum.bits()[1..].to_vec();
        bits.push(mc);
        Word::from_bits(bits)
    };
    let m_next_lo: Word = {
        let mut bits: Vec<NetId> = md_lo_fb.bits()[1..].to_vec();
        bits.push(msum.bit(0));
        Word::from_bits(bits)
    };
    let cnt31 = b.match_pattern(&md_cnt_fb, 0x3F, 31);
    let mul_done = b.and2(md_busy_fb, cnt31);
    let md_busy_next = {
        let nd = b.not(mul_done);
        let keep = b.and2(md_busy_fb, nd);
        b.or2(mul_start, keep)
    };
    let md_busy = b.dff(md_busy_next, false, "md_busy");
    b.bind_bit(md_busy_fb, md_busy);
    let one6 = b.constant(1, 6);
    let cnt_plus = b.add(&md_cnt_fb, &one6);
    let zero6 = b.constant(0, 6);
    let cnt_next = {
        let stepped = b.mux_word(md_busy_fb, &cnt_plus, &md_cnt_fb);
        b.mux_word(mul_start, &zero6, &stepped)
    };
    let md_cnt = b.reg(&cnt_next, 0, "md_cnt");
    b.bind(&md_cnt_fb, &md_cnt);
    let lo_next = {
        let stepped = b.mux_word(md_busy_fb, &m_next_lo, &md_lo_fb);
        b.mux_word(mul_start, &op_b_reg, &stepped)
    };
    let hi_next = {
        let stepped = b.mux_word(md_busy_fb, &m_next_hi, &md_hi_fb);
        b.mux_word(mul_start, &zero32, &stepped)
    };
    let md_lo = b.reg(&lo_next, 0, "md_lo");
    let md_hi = b.reg(&hi_next, 0, "md_hi");
    b.bind(&md_lo_fb, &md_lo);
    b.bind(&md_hi_fb, &md_hi);
    let mul_result = m_next_lo.clone();

    // ---- LDM/STM/PUSH/POP iterative unit ----
    // State: remaining register list (9 bits: r0..r7 + LR/PC), current
    // address, busy flag, and whether this is a load.
    let ls_busy_fb = fwd(&mut b, "ls_busy_fb");
    let ls_list_fb = fwd_w(&mut b, "ls_list_fb", 9);
    let ls_addr_fb = fwd_w(&mut b, "ls_addr_fb", 32);
    let is_push = m(Push);
    let is_pop = m(Pop);
    let is_ldm = m(Ldm);
    let is_stm = m(Stm);
    let is_multi = {
        let x = b.or2(is_push, is_pop);
        let y = b.or2(is_ldm, is_stm);
        b.or2(x, y)
    };
    let multi_req = b.and2(is_multi, ex_valid);
    let nls_busy = b.not(ls_busy_fb);
    let list9: Word = ex_hw.slice(0, 9);
    let list_empty_init = b.is_zero(&list9);
    let nle = b.not(list_empty_init);
    let multi_start = {
        let x = b.and2(multi_req, nls_busy);
        b.and2(x, nle)
    };
    // The start cycle only latches the list/address and performs the
    // base-register update; memory beats run on the following ls_busy
    // cycles (single write port).
    // PUSH pre-decrements: start address = SP - 4*popcount(list).
    let popcount = {
        // adder tree over the 9 list bits.
        let mut acc = b.constant(0, 4);
        for &bit in list9.bits() {
            let bw = {
                let mut bits = vec![bit];
                bits.resize(4, zero);
                Word::from_bits(bits)
            };
            acc = b.add(&acc, &bw);
        }
        acc
    };
    let bytes_total: Word = {
        let ext = b.extend(&popcount, 30, false);
        let lo = b.constant(0, 2);
        lo.concat(&ext)
    };
    let sp_val = {
        let sp_a = b.constant(13, 4);
        b.regfile_read(&regs, &sp_a)
    };
    let push_base = b.sub(&sp_val, &bytes_total);
    let start_addr = b.mux_word(is_push, &push_base, &op_a);
    // Lowest set bit of the remaining list (beat cycles only).
    let cur_list = ls_list_fb.clone();
    let mut lowest_idx = b.constant(0, 4);
    let mut found = zero;
    for i in (0..9).rev() {
        // iterate high→low so the final mux chain prefers the lowest index
        let bit = cur_list.bit(i);
        let iw = b.constant(i as u64, 4);
        lowest_idx = b.mux_word(bit, &iw, &lowest_idx);
        found = b.or2(found, bit);
    }
    // Clear the lowest bit.
    let next_list: Word = {
        let mut bits = Vec::with_capacity(9);
        for i in 0..9 {
            let here = b.decode_index(&lowest_idx, i);
            let nh = b.not(here);
            bits.push(b.and2(cur_list.bit(i), nh));
        }
        Word::from_bits(bits)
    };
    let ls_active = ls_busy_fb;
    let cur_addr = ls_addr_fb.clone();
    let four32 = b.constant(4, 32);
    let next_addr = b.add(&cur_addr, &four32);
    let next_list_empty = b.is_zero(&next_list);
    let multi_done = b.and2(ls_active, next_list_empty);
    let ls_busy_next = {
        let nd = b.not(multi_done);
        let keep = b.and2(ls_active, nd);
        b.or2(multi_start, keep)
    };
    let ls_busy = b.dff(ls_busy_next, false, "ls_busy");
    b.bind_bit(ls_busy_fb, ls_busy);
    let ls_list_next = {
        let stepped = b.mux_word(ls_active, &next_list, &ls_list_fb);
        b.mux_word(multi_start, &list9, &stepped)
    };
    let ls_list = b.reg(&ls_list_next, 0, "ls_list");
    b.bind(&ls_list_fb, &ls_list);
    let ls_addr_next = {
        let stepped = b.mux_word(ls_active, &next_addr, &ls_addr_fb);
        b.mux_word(multi_start, &start_addr, &stepped)
    };
    let ls_addr = b.reg(&ls_addr_next, 0, "ls_addr");
    b.bind(&ls_addr_fb, &ls_addr);
    // The register being transferred this beat: index 8 means LR for PUSH,
    // PC for POP.
    let multi_reg: Word = {
        let idx8 = b.decode_index(&lowest_idx, 8);
        let lr = b.constant(14, 4);
        let pc = b.constant(15, 4);
        let hi_reg = b.mux_word(is_push, &lr, &pc);
        let low = b.extend(&lowest_idx, 4, false);
        b.mux_word(idx8, &hi_reg, &low)
    };
    let multi_reg_val = b.regfile_read(&regs, &multi_reg);
    let multi_is_store = b.or2(is_push, is_stm);
    let pop_to_pc = {
        let idx8 = b.decode_index(&lowest_idx, 8);
        let x = b.and2(is_pop, idx8);
        b.and2(x, ls_active)
    };
    // Final SP update value.
    let sp_after = {
        // PUSH: SP - total ; POP: SP + total ; LDM/STM: Rn + total.
        let sp_minus = push_base.clone();
        let base_plus = b.add(&op_a, &bytes_total);
        b.mux_word(is_push, &sp_minus, &base_plus)
    };

    // ---- loads/stores (single) ----
    let is_ldr_w = {
        let x = m(LdrImm);
        let x = b.or2(x, m(LdrReg));
        let x = b.or2(x, m(LdrSp));
        b.or2(x, m(LdrLit))
    };
    let is_ldr_b = b.or2(m(LdrbImm), m(LdrbReg));
    let is_ldr_h = b.or2(m(LdrhImm), m(LdrhReg));
    let is_ldr_sb = m(LdrsbReg);
    let is_ldr_sh = m(LdrshReg);
    let is_load_any = {
        let x = b.or2(is_ldr_w, is_ldr_b);
        let x = b.or2(x, is_ldr_h);
        let x = b.or2(x, is_ldr_sb);
        b.or2(x, is_ldr_sh)
    };
    let is_str_w = {
        let x = b.or2(m(StrImm), m(StrReg));
        b.or2(x, m(StrSp))
    };
    let is_str_b = b.or2(m(StrbImm), m(StrbReg));
    let is_str_h = b.or2(m(StrhImm), m(StrhReg));
    let is_store_any = {
        let x = b.or2(is_str_w, is_str_b);
        b.or2(x, is_str_h)
    };
    // Offset: imm5 scaled by access size, or register.
    let off_w: Word = {
        let ext = b.extend(&imm5, 30, false);
        let lo = b.constant(0, 2);
        lo.concat(&ext)
    };
    let off_h: Word = {
        let ext = b.extend(&imm5, 31, false);
        let lo = b.constant(0, 1);
        lo.concat(&ext)
    };
    let off_b = b.extend(&imm5, 32, false);
    let off_imm8w: Word = {
        let ext = b.extend(&imm8, 30, false);
        let lo = b.constant(0, 2);
        lo.concat(&ext)
    };
    let use_reg_off = {
        let x = b.or2(m(LdrReg), m(StrReg));
        let x = b.or2(x, m(LdrbReg));
        let x = b.or2(x, m(StrbReg));
        let x = b.or2(x, m(LdrhReg));
        let x = b.or2(x, m(StrhReg));
        let x = b.or2(x, m(LdrsbReg));
        b.or2(x, m(LdrshReg))
    };
    let size_h_any = {
        let x = b.or2(is_ldr_h, is_ldr_sh);
        b.or2(x, is_str_h)
    };
    let size_b_any = {
        let x = b.or2(is_ldr_b, is_ldr_sb);
        b.or2(x, is_str_b)
    };
    let mut offset = off_w.clone();
    offset = b.mux_word(size_h_any, &off_h, &offset);
    offset = b.mux_word(size_b_any, &off_b, &offset);
    let sp_rel = {
        let x = b.or2(m(LdrSp), m(StrSp));
        b.or2(x, m(LdrLit))
    };
    offset = b.mux_word(sp_rel, &off_imm8w, &offset);
    offset = b.mux_word(use_reg_off, &op_idx, &offset);
    // Base: op_a (Rn / SP / Rdn8 paths resolved above); LDR literal uses
    // aligned PC.
    let base = b.mux_word(m(LdrLit), &pc_al, &op_a);
    let mem_addr_s = b.add(&base, &offset);
    // Multi-transfer overrides.
    let mem_addr = b.mux_word(ls_active, &cur_addr, &mem_addr_s);
    let a0 = mem_addr.bit(0);
    let a1 = mem_addr.bit(1);
    let word_addr: Word = {
        let mut bits = mem_addr.bits().to_vec();
        bits[0] = zero;
        bits[1] = zero;
        Word::from_bits(bits)
    };
    let sh_amt: Word = [zero, zero, zero, a0, a1].into_iter().collect();
    let aligned_load = b.shr(&data_rdata, &sh_amt);
    let ld_b = {
        let by = aligned_load.slice(0, 8);
        b.extend(&by, 32, false)
    };
    let ld_sb = {
        let by = aligned_load.slice(0, 8);
        b.extend(&by, 32, true)
    };
    let ld_h = {
        let hf = aligned_load.slice(0, 16);
        b.extend(&hf, 32, false)
    };
    let ld_sh = {
        let hf = aligned_load.slice(0, 16);
        b.extend(&hf, 32, true)
    };
    let mut load_val = aligned_load.clone();
    load_val = b.mux_word(is_ldr_b, &ld_b, &load_val);
    load_val = b.mux_word(is_ldr_sb, &ld_sb, &load_val);
    load_val = b.mux_word(is_ldr_h, &ld_h, &load_val);
    load_val = b.mux_word(is_ldr_sh, &ld_sh, &load_val);
    // Store path.
    let store_src = b.mux_word(ls_active, &multi_reg_val, &op_b_reg);
    let store_data = b.shl(&store_src, &sh_amt);
    let be = {
        let b0 = one;
        let b1 = b.not(size_b_any);
        let b23 = {
            let x = b.or2(size_b_any, size_h_any);
            b.not(x)
        };
        let base_w: Word = [b0, b1, b23, b23].into_iter().collect();
        let ones4 = b.constant(0xF, 4);
        let w = b.mux_word(ls_active, &ones4, &base_w);
        let sh2: Word = [a0, a1].into_iter().collect();
        b.shl(&w, &sh2)
    };

    // ---- branches ----
    let flag_n = flag_n_fb;
    let flag_z = flag_z_fb;
    let flag_c = flag_c_fb;
    let flag_v = flag_v_fb;
    let cond = ex_hw.slice(8, 12);
    let cond_pass = {
        // Standard ARM condition table.
        let nn = b.not(flag_n);
        let nz = b.not(flag_z);
        let nc = b.not(flag_c);
        let nv = b.not(flag_v);
        let ge = {
            let x = b.xor2(flag_n, flag_v);
            b.not(x)
        };
        let lt = b.xor2(flag_n, flag_v);
        let gt = b.and2(nz, ge);
        let le = b.or2(flag_z, lt);
        let hi = b.and2(flag_c, nz);
        let ls = b.or2(nc, flag_z);
        let c0 = b.decode_index(&cond, 0); // EQ
        let c1 = b.decode_index(&cond, 1); // NE
        let c2 = b.decode_index(&cond, 2); // CS
        let c3 = b.decode_index(&cond, 3); // CC
        let c4 = b.decode_index(&cond, 4); // MI
        let c5 = b.decode_index(&cond, 5); // PL
        let c6 = b.decode_index(&cond, 6); // VS
        let c7 = b.decode_index(&cond, 7); // VC
        let c8 = b.decode_index(&cond, 8); // HI
        let c9 = b.decode_index(&cond, 9); // LS
        let c10 = b.decode_index(&cond, 10); // GE
        let c11 = b.decode_index(&cond, 11); // LT
        let c12 = b.decode_index(&cond, 12); // GT
        let c13 = b.decode_index(&cond, 13); // LE
        let mut p = zero;
        for (sel_c, val) in [
            (c0, flag_z),
            (c1, nz),
            (c2, flag_c),
            (c3, nc),
            (c4, flag_n),
            (c5, nn),
            (c6, flag_v),
            (c7, nv),
            (c8, hi),
            (c9, ls),
            (c10, ge),
            (c11, lt),
            (c12, gt),
            (c13, le),
        ] {
            let t = b.and2(sel_c, val);
            p = b.or2(p, t);
        }
        p
    };
    // Branch offsets (relative to pc + 4).
    let bcond_off = {
        let w: Word = {
            let mut bits = vec![zero];
            bits.extend_from_slice(imm8.bits());
            Word::from_bits(bits)
        };
        b.extend(&w, 32, true)
    };
    let b_off = {
        let imm11 = ex_hw.slice(0, 11);
        let w: Word = {
            let mut bits = vec![zero];
            bits.extend_from_slice(imm11.bits());
            Word::from_bits(bits)
        };
        b.extend(&w, 32, true)
    };
    let bcond_tgt = {
        let t = b.add(&pc_read, &bcond_off);
        t
    };
    let b_tgt = b.add(&pc_read, &b_off);
    let bx_tgt = {
        let mut bits = op_b_reg.bits().to_vec();
        bits[0] = zero;
        Word::from_bits(bits)
    };
    // BL: second half (ex_is32 registered says *this* halfword was hw1).
    let bl_exec = {
        let x = b.and2(bl_pending_fb, ex_valid);
        x
    };
    let bl_off = {
        // offset = S:I1:I2:imm10:imm11:0 where I = !(J ^ S).
        let s = bl_hw1_fb.bit(10);
        let j1 = ex_hw.bit(13);
        let j2 = ex_hw.bit(11);
        let i1 = {
            let x = b.xor2(j1, s);
            b.not(x)
        };
        let i2 = {
            let x = b.xor2(j2, s);
            b.not(x)
        };
        let imm10 = bl_hw1_fb.slice(0, 10);
        let imm11 = ex_hw.slice(0, 11);
        let mut bits = vec![zero];
        bits.extend_from_slice(imm11.bits());
        bits.extend_from_slice(imm10.bits());
        bits.push(i2);
        bits.push(i1);
        bits.push(s);
        let w = Word::from_bits(bits);
        b.extend(&w, 32, true)
    };
    // BL target relative to hw1's pc + 4 = ex_pc - 2 + 4 = ex_pc + 2.
    let two32 = b.constant(2, 32);
    let bl_base = b.add(&ex_pc, &two32);
    let bl_tgt = b.add(&bl_base, &bl_off);
    let bl_lr = {
        // return address = address after hw2, with thumb bit set.
        let ret = b.add(&ex_pc, &two32);
        let mut bits = ret.bits().to_vec();
        bits[0] = one;
        Word::from_bits(bits)
    };

    // ---- result mux & writeback ----
    let exec = fwd(&mut b, "exec_w");
    let _ = &two32;
    let mut result = sum.clone();
    let sel_and = m(Ands);
    result = b.mux_word(sel_and, &and_r, &result);
    result = b.mux_word(m(Tst), &and_r, &result);
    result = b.mux_word(m(Bics), &bic_r, &result);
    result = b.mux_word(m(Orrs), &or_r, &result);
    result = b.mux_word(m(Eors), &xor_r, &result);
    result = b.mux_word(m(Mvns), &mvn_r, &result);
    let sel_lsl = b.or2(m(LslsImm), m(LslsReg));
    result = b.mux_word(sel_lsl, &lsl_r, &result);
    let sel_lsr = b.or2(m(LsrsImm), m(LsrsReg));
    result = b.mux_word(sel_lsr, &lsr_r, &result);
    let sel_asr = b.or2(m(AsrsImm), m(AsrsReg));
    result = b.mux_word(sel_asr, &asr_r, &result);
    result = b.mux_word(m(Rors), &ror_r, &result);
    let sel_mov = b.or2(m(MovImm), m(MovsReg));
    let mov_val = b.mux_word(m(MovImm), &imm8_32, &op_b_reg);
    // MOVS reg moves Rm (bits 5:3) — op_b_reg reads rn3 for that form.
    result = b.mux_word(sel_mov, &mov_val, &result);
    result = b.mux_word(m(MovRegHigh), &op_b_reg, &result);
    result = b.mux_word(m(Sxtb), &sxtb_r, &result);
    result = b.mux_word(m(Sxth), &sxth_r, &result);
    result = b.mux_word(m(Uxtb), &uxtb_r, &result);
    result = b.mux_word(m(Uxth), &uxth_r, &result);
    result = b.mux_word(m(Rev), &rev_r, &result);
    result = b.mux_word(m(Rev16), &rev16_r, &result);
    result = b.mux_word(m(Revsh), &revsh_r, &result);
    result = b.mux_word(is_load_any, &load_val, &result);
    result = b.mux_word(is_mul, &mul_result, &result);
    let multi_load_active = {
        let ld = b.or2(is_pop, is_ldm);
        b.and2(ld, ls_active)
    };
    result = b.mux_word(multi_load_active, &load_val, &result);

    // Destination register.
    let blx_lr: Word = {
        let ret = b.add(&ex_pc, &two32);
        let mut bits = ret.bits().to_vec();
        bits[0] = one;
        Word::from_bits(bits)
    };
    let wdest = {
        let d = b.mux_word(use_rdn8, &rdn8w, &rd3w);
        let d = b.mux_word(use_hi, &rd_hi, &d);
        let sp = b.constant(13, 4);
        let sp_write = {
            let x = b.or2(m(AddSpImmT2), m(SubSpImm));
            x
        };
        let d = b.mux_word(sp_write, &sp, &d);
        let lr = b.constant(14, 4);
        let link = b.or2(bl_exec, m(BlxReg));
        let d = b.mux_word(link, &lr, &d);
        // Multi-transfer loads write the per-beat register.
        b.mux_word(ls_active, &multi_reg, &d)
    };

    let writes_rd = {
        let x = m(MovImm);
        let x = b.or2(x, m(MovsReg));
        let x = b.or2(x, m(MovRegHigh));
        let x = b.or2(x, m(AddsReg));
        let x = b.or2(x, m(SubsReg));
        let x = b.or2(x, m(AddsImm3));
        let x = b.or2(x, m(SubsImm3));
        let x = b.or2(x, m(AddsImm8));
        let x = b.or2(x, m(SubsImm8));
        let x = b.or2(x, m(AddRegHigh));
        let x = b.or2(x, m(AddSpImmT1));
        let x = b.or2(x, m(AddSpImmT2));
        let x = b.or2(x, m(SubSpImm));
        let x = b.or2(x, m(AddSpReg));
        let x = b.or2(x, m(Adr));
        let x = b.or2(x, m(Ands));
        let x = b.or2(x, m(Eors));
        let x = b.or2(x, m(Orrs));
        let x = b.or2(x, m(Bics));
        let x = b.or2(x, m(Mvns));
        let x = b.or2(x, m(Adcs));
        let x = b.or2(x, m(Sbcs));
        let x = b.or2(x, m(Rsbs));
        let x = b.or2(x, sel_lsl);
        let x = b.or2(x, sel_lsr);
        let x = b.or2(x, sel_asr);
        let x = b.or2(x, m(Rors));
        let x = b.or2(x, m(Sxtb));
        let x = b.or2(x, m(Sxth));
        let x = b.or2(x, m(Uxtb));
        let x = b.or2(x, m(Uxth));
        let x = b.or2(x, m(Rev));
        let x = b.or2(x, m(Rev16));
        let x = b.or2(x, m(Revsh));
        let x = b.or2(x, is_mul);
        b.or2(x, is_load_any)
    };

    // ---- pipeline control ----
    // Stalls: MULS until done; multi-transfer until done.
    let stall_v = {
        let mul_stall = {
            let nd = b.not(mul_done);
            b.and2(mul_req, nd)
        };
        let multi_stall = {
            let nd = b.not(multi_done);
            let req_nonempty = b.and2(multi_req, nle);
            let active_req = b.or2(req_nonempty, ls_busy_fb);
            b.and2(active_req, nd)
        };
        b.or2(mul_stall, multi_stall)
    };
    b.bind_bit(stall_w, stall_v);
    let exec_v = {
        let ns = b.not(stall_v);
        b.and2(ex_valid, ns)
    };
    b.bind_bit(exec, exec_v);

    // BL pairing registers.
    let bl_pending_next = {
        // Set when a 32-bit prefix executes — but not while already
        // pending: BL's *second* halfword also matches the prefix pattern
        // and must not re-arm the latch. Cleared when the pair retires.
        let np = b.not(bl_pending_fb);
        let first = b.and2(ex_is32, np);
        let set = b.and2(first, exec_v);
        let npend = b.not(exec_v);
        let keep = b.and2(bl_pending_fb, npend);
        b.or2(set, keep)
    };
    let bl_pending = b.dff(bl_pending_next, false, "bl_pending");
    b.bind_bit(bl_pending_fb, bl_pending);
    let hw1_keep = {
        let np = b.not(bl_pending_fb);
        let first = b.and2(ex_is32, np);
        b.and2(first, exec_v)
    };
    let bl_hw1_next = b.mux_word(hw1_keep, &ex_hw, &bl_hw1_fb);
    let bl_hw1 = b.reg(&bl_hw1_next, 0, "bl_hw1");
    b.bind(&bl_hw1_fb, &bl_hw1);

    // Taken control transfers.
    let bcond_taken = b.and2(m(BCond), cond_pass);
    let is_bx = b.or2(m(Bx), m(BlxReg));
    let take = {
        let x = b.or2(bcond_taken, m(B));
        let x = b.or2(x, is_bx);
        let x = b.or2(x, bl_exec);
        b.or2(x, pop_to_pc)
    };
    // Suppress normal side effects while a BL pair is in flight (hw1 and
    // hw2 are not standalone instructions).
    let plain = {
        let n32 = b.not(ex_is32);
        let npend = b.not(bl_pending_fb);
        b.and2(n32, npend)
    };
    let taken = {
        let t = {
            let pt = b.and2(take, plain);
            let blp = b.and2(bl_exec, one);
            b.or2(pt, blp)
        };
        b.and2(t, exec_v)
    };
    let redirect_v = taken;
    b.bind_bit(redirect_w, redirect_v);
    let mut tgt = bcond_tgt.clone();
    tgt = b.mux_word(m(B), &b_tgt, &tgt);
    tgt = b.mux_word(is_bx, &bx_tgt, &tgt);
    let pop_pc_tgt = {
        let mut bits = load_val.bits().to_vec();
        bits[0] = zero;
        Word::from_bits(bits)
    };
    tgt = b.mux_word(pop_to_pc, &pop_pc_tgt, &tgt);
    tgt = b.mux_word(bl_exec, &bl_tgt, &tgt);
    b.bind(&target_w, &tgt);

    // ---- writeback enables ----
    let wen = {
        let base_we = b.and2(writes_rd, plain);
        // Multi-transfer loads write each beat; SP update handled below via
        // a second write cycle? No second port: write SP at done using the
        // dedicated sp_after path muxed into the final beat... The final
        // beat must write both the last register and SP. To stay
        // single-ported, LDM/STM/PUSH/POP write SP on the *start* cycle
        // (the list beats follow), which is architecturally equivalent here
        // because the beat addresses come from the dedicated address
        // register.
        let multi_load_beat = {
            let ld = b.or2(is_pop, is_ldm);
            let x = b.and2(ld, ls_active);
            let npc = b.not(pop_to_pc);
            b.and2(x, npc)
        };
        let x = b.or2(base_we, multi_load_beat);
        let sp_up = b.and2(is_multi, multi_start);
        let x2 = b.or2(x, sp_up);
        let blw = b.and2(bl_exec, one);
        let blxw = m(BlxReg);
        let x2 = b.or2(x2, blxw);
        let x3 = b.or2(x2, blw);
        let mr = b.not(mul_req);
        let allow_mul = b.or2(mr, mul_done);
        b.and2(x3, allow_mul)
    };
    // Base-update on the start cycle overrides destination/result.
    let sp_up_now = b.and2(is_multi, multi_start);
    let wdest_final = {
        let sp = b.constant(13, 4);
        let stack_op = b.or2(is_push, is_pop);
        let base_dst = b.mux_word(stack_op, &sp, &rdn8w);
        b.mux_word(sp_up_now, &base_dst, &wdest)
    };
    let result_final = {
        let r = b.mux_word(sp_up_now, &sp_after, &result);
        let r = b.mux_word(m(BlxReg), &blx_lr, &r);
        b.mux_word(bl_exec, &bl_lr, &r)
    };
    let wen_final = {
        // Gate on valid: either executing normally, or a busy beat.
        let normal = b.and2(wen, exec_v);
        let beat_we = {
            let ld = b.or2(is_pop, is_ldm);
            let x = b.and2(ld, ls_busy_fb);
            let npc = b.not(pop_to_pc);
            let x = b.and2(x, npc);
            b.and2(x, ex_valid)
        };
        let w = b.or2(normal, beat_we);
        // The base-register update happens on the start cycle, which is a
        // stall cycle (exec_v low) — it must bypass the exec gate.
        b.or2(w, sp_up_now)
    };
    b.bind_bit(rf_wen, wen_final);
    b.bind(&rf_waddr, &wdest_final);
    b.bind(&rf_wdata, &result_final);

    // ---- flags update ----
    let sets_nz_only = {
        let x = m(Ands);
        let x = b.or2(x, m(Eors));
        let x = b.or2(x, m(Orrs));
        let x = b.or2(x, m(Bics));
        let x = b.or2(x, m(Mvns));
        let x = b.or2(x, m(Tst));
        let x = b.or2(x, m(MovImm));
        let x = b.or2(x, m(MovsReg));
        b.or2(x, is_mul)
    };
    let sets_nzc_shift = {
        let x = b.or2(sel_lsl, sel_lsr);
        let x = b.or2(x, sel_asr);
        b.or2(x, m(Rors))
    };
    let sets_nzcv = {
        let x = m(AddsReg);
        let x = b.or2(x, m(SubsReg));
        let x = b.or2(x, m(AddsImm3));
        let x = b.or2(x, m(SubsImm3));
        let x = b.or2(x, m(AddsImm8));
        let x = b.or2(x, m(SubsImm8));
        let x = b.or2(x, m(Adcs));
        let x = b.or2(x, m(Sbcs));
        let x = b.or2(x, m(Rsbs));
        let x = b.or2(x, m(CmpImm));
        let x = b.or2(x, m(CmpReg));
        let x = b.or2(x, m(CmpRegHigh));
        b.or2(x, m(Cmn))
    };
    let sets_any = {
        let x = b.or2(sets_nz_only, sets_nzc_shift);
        b.or2(x, sets_nzcv)
    };
    let flag_en = {
        let x = b.and2(sets_any, exec_v);
        b.and2(x, plain)
    };
    // For MULS the final-cycle gating matters.
    let flag_en = {
        let nm = b.not(mul_req);
        let ok = b.or2(nm, mul_done);
        b.and2(flag_en, ok)
    };
    let res_n = result_final.msb();
    let res_z = b.is_zero(&result_final);
    let new_c = {
        let shift_c = {
            let mut c = lsl_c;
            c = b.mux(sel_lsr, lsr_c, c);
            c = b.mux(sel_asr, asr_c, c);
            c = b.mux(m(Rors), ror_c, c);
            // shift by zero keeps old carry.
            b.mux(shift_zero, flag_c, c)
        };
        let c = b.mux(sets_nzc_shift, shift_c, flag_c);
        b.mux(sets_nzcv, cout, c)
    };
    let new_v = b.mux(sets_nzcv, v_add, flag_v);
    let n_next = b.mux(flag_en, res_n, flag_n);
    let z_next = b.mux(flag_en, res_z, flag_z);
    let c_next = b.mux(flag_en, new_c, flag_c);
    let v_next = b.mux(flag_en, new_v, flag_v);
    let n_q = b.dff(n_next, false, "flag_n");
    let z_q = b.dff(z_next, false, "flag_z");
    let c_q = b.dff(c_next, false, "flag_c");
    let v_q = b.dff(v_next, false, "flag_v");
    b.bind_bit(flag_n_fb, n_q);
    b.bind_bit(flag_z_fb, z_q);
    b.bind_bit(flag_c_fb, c_q);
    b.bind_bit(flag_v_fb, v_q);

    // ---- faults ----
    let fault = {
        let x = b.or2(m(Svc), m(Bkpt));
        let x = b.or2(x, m(Udf));
        let known: Vec<NetId> = ThumbInstr::ALL
            .iter()
            .filter(|f| !f.is_32bit())
            .map(|f| ex_sel[f])
            .collect();
        let any_known = b.or_many(&known);
        let any_known = b.or2(any_known, ex_is32);
        let any_known = b.or2(any_known, bl_pending_fb);
        let unk = b.not(any_known);
        let x = b.or2(x, unk);
        b.and2(x, exec_v)
    };

    // ---- memory port outputs ----
    let data_we = {
        let single = b.and2(is_store_any, exec_v);
        let single = b.and2(single, plain);
        let multi_beat = {
            let st = b.and2(multi_is_store, ls_active);
            b.and2(st, ex_valid)
        };
        b.or2(single, multi_beat)
    };
    let be_gated: Word = be.bits().iter().map(|&x| b.and2(x, data_we)).collect();

    b.output_word("instr_addr_o", &pc_f);
    b.output_word("data_addr_o", &word_addr);
    b.output_word("data_wdata_o", &store_data);
    b.output_bit("data_we_o", data_we);
    b.output_word("data_be_o", &be_gated);
    b.output_bit("retire_o", exec_v);
    b.output_bit("fault_o", fault);
    b.output_bit("flag_n_o", n_q);
    b.output_bit("flag_z_o", z_q);
    b.output_bit("flag_c_o", c_q);
    b.output_bit("flag_v_o", v_q);
    for (r, reg) in regs.iter().enumerate().take(15) {
        b.output_word(&format!("r{r}_o"), reg);
    }

    let cut_fetch = fd_d.bits().to_vec();
    let regs_nets: Vec<Vec<NetId>> = regs.iter().map(|w| w.bits().to_vec()).collect();
    let core = CortexM0Core {
        instr_in: instr_i.bits().to_vec(),
        data_rdata_in: data_rdata.bits().to_vec(),
        instr_addr_out: pc_f.bits().to_vec(),
        retire_out: exec_v,
        fault_out: fault,
        cut_fetch,
        regs: regs_nets,
        data_addr_out: word_addr.bits().to_vec(),
        data_wdata_out: store_data.bits().to_vec(),
        data_be_out: be_gated.bits().to_vec(),
        data_we_out: data_we,
        netlist: b.finish(),
    };
    core
}

/// Re-derive a [`CortexM0Core`] handle from a transformed netlist via the
/// preserved port names (counterpart of [`crate::rebind_ibex`]).
///
/// # Panics
///
/// Panics if the netlist does not expose the Cortex-M0-class port set.
pub fn rebind_cortexm0(netlist: Netlist) -> CortexM0Core {
    let input_word = |nl: &Netlist, name: &str, w: usize| -> Vec<NetId> {
        (0..w)
            .map(|i| {
                nl.find_net(&format!("{name}[{i}]"))
                    .unwrap_or_else(|| panic!("missing input {name}[{i}]"))
            })
            .collect()
    };
    let outputs: std::collections::HashMap<String, NetId> = netlist
        .outputs()
        .iter()
        .map(|(n, id)| (n.clone(), *id))
        .collect();
    let output_word = |name: &str, w: usize| -> Vec<NetId> {
        (0..w)
            .map(|i| {
                *outputs
                    .get(&format!("{name}[{i}]"))
                    .unwrap_or_else(|| panic!("missing output {name}[{i}]"))
            })
            .collect()
    };
    let output_bit = |name: &str| -> NetId {
        *outputs
            .get(name)
            .unwrap_or_else(|| panic!("missing output {name}"))
    };
    let instr_in = input_word(&netlist, "instr_i", 16);
    let data_rdata_in = input_word(&netlist, "data_rdata_i", 32);
    let instr_addr_out = output_word("instr_addr_o", 32);
    let data_addr_out = output_word("data_addr_o", 32);
    let data_wdata_out = output_word("data_wdata_o", 32);
    let data_be_out = output_word("data_be_o", 4);
    let data_we_out = output_bit("data_we_o");
    let retire_out = output_bit("retire_o");
    let fault_out = output_bit("fault_o");
    let mut regs: Vec<Vec<NetId>> = Vec::with_capacity(16);
    for r in 0..15 {
        regs.push(output_word(&format!("r{r}_o"), 32));
    }
    regs.push(output_word("r0_o", 32)); // r15 placeholder (unused by harness)
    CortexM0Core {
        netlist,
        instr_in,
        data_rdata_in,
        instr_addr_out,
        retire_out,
        fault_out,
        cut_fetch: Vec::new(),
        regs,
        data_addr_out,
        data_wdata_out,
        data_be_out,
        data_we_out,
    }
}
