//! Processor-core netlist generators for the PDAT reproduction.
//!
//! Three embedded-class cores mirror the paper's Table II:
//!
//! * [`build_ibex`] — 2-stage in-order RV32IMC+Zicsr (Ibex-class);
//! * a 3-stage ARMv6-M core (Cortex-M0-class) with an obfuscation pass;
//! * a 2-way out-of-order RV32IM core at the ~100k-gate scale
//!   (RIDECORE-class).
//!
//! [`CoreHarness`] executes generated netlists against in-memory program
//! images for lockstep validation.

mod cortexm0;
mod expander;
mod harness;
mod ibex;
mod obfuscate;
mod ridecore;
mod spec;

pub use cortexm0::{build_cortexm0, rebind_cortexm0, CortexM0Core};
pub use expander::build_expander;
pub use harness::{CoreHarness, ThumbHarness};
pub use ibex::{build_ibex, rebind_ibex, IbexCore};
pub use obfuscate::{obfuscate, ObfuscateConfig};
pub use ridecore::{build_ridecore, RideCore};
pub use spec::{core_specs, CoreSpec};
