//! An Ibex-class core generator: 2-stage, in-order, single-issue
//! RV32IMC + Zicsr/Zifencei, statically-not-taken branches, 32 registers.
//!
//! The microarchitecture deliberately mirrors the properties the paper
//! exploits:
//!
//! * compressed decode happens in the decode stage behind the fetch-decode
//!   pipeline register (the cutpoint location of the paper's Fig. 4);
//! * the M extension is an iterative 32-cycle multiply/divide unit whose
//!   stall control is woven through the pipeline (the "distributed stall
//!   controller" that defeats manual trimming);
//! * CSR logic (Zicsr) is tightly coupled to the trap path, so it cannot be
//!   removed by parameterization;
//! * byte/halfword load-store alignment logic is shared with the word path
//!   (removed only by the paper's "Aligned" variant).
//!
//! The generated netlist is a *functional* processor: the integration tests
//! run programs on it in lockstep with the instruction-set simulator.

use crate::expander::build_expander;
use pdat_isa::rv32::RvInstr;
use pdat_netlist::{NetId, Netlist};
use pdat_rtl::{RtlBuilder, Word};

/// Handles to the generated core's ports and analysis points.
#[derive(Debug, Clone)]
pub struct IbexCore {
    /// The gate-level netlist.
    pub netlist: Netlist,
    /// Instruction fetch word (primary inputs, LSB first).
    pub instr_in: Vec<NetId>,
    /// Load data (primary inputs).
    pub data_rdata_in: Vec<NetId>,
    /// Fetch address output nets.
    pub instr_addr_out: Vec<NetId>,
    /// Data address output nets.
    pub data_addr_out: Vec<NetId>,
    /// Store data output nets.
    pub data_wdata_out: Vec<NetId>,
    /// Byte enables.
    pub data_be_out: Vec<NetId>,
    /// Store strobe.
    pub data_we_out: NetId,
    /// Retire strobe (one instruction completed this cycle).
    pub retire_out: NetId,
    /// PC of the retiring instruction.
    pub retire_pc_out: Vec<NetId>,
    /// Trap strobe.
    pub trap_out: NetId,
    /// The fetch-decode pipeline register *input* nets — the paper's
    /// cutpoint location (Fig. 4).
    pub cut_fetch: Vec<NetId>,
    /// Architectural register file nets (x0..x31), for lockstep checking.
    pub regs: Vec<Vec<NetId>>,
}

/// Generate the core.
pub fn build_ibex() -> IbexCore {
    let mut b = RtlBuilder::new("ibex_like");

    // ---- ports ----
    let instr_i = b.input_word("instr_i", 32);
    let data_rdata = b.input_word("data_rdata_i", 32);

    let zero = b.zero();
    let one = b.one();

    // ---- fetch stage ----
    // Sequential fetch size from the raw fetch word (pre-pipeline).
    let f_b0 = instr_i.bit(0);
    let f_b1 = instr_i.bit(1);
    let fetch_is32 = b.and2(f_b0, f_b1);

    // Forward-reference nets for pipeline control, resolved at the end.
    let fwd = |b: &mut RtlBuilder, name: &str| -> NetId { b.raw_net(name) };
    let stall_w = fwd(&mut b, "stall_w");
    let redirect_w = fwd(&mut b, "redirect_w");
    let target_w: Word = (0..32).map(|i| fwd(&mut b, &format!("target_w{i}"))).collect();

    // pc_f register.
    // next_pc_f = redirect ? target : (stall ? pc_f : pc_f + step)
    let pc_f_fb: Word = (0..32).map(|i| fwd(&mut b, &format!("pc_f_fb{i}"))).collect();
    let two = b.constant(2, 32);
    let four = b.constant(4, 32);
    let step = b.mux_word(fetch_is32, &four, &two);
    let pc_plus = b.add(&pc_f_fb, &step);
    let held = b.mux_word(stall_w, &pc_f_fb, &pc_plus);
    let next_pc_f = b.mux_word(redirect_w, &target_w, &held);
    let pc_f = b.reg(&next_pc_f, 0, "pc_f");
    b.bind(&pc_f_fb, &pc_f);

    // Fetch-decode pipeline registers. The D-side nets of the instruction
    // register are explicit named buffers: PDAT's cutpoint-based constraints
    // cut exactly these nets.
    let fd_d: Word = instr_i
        .bits()
        .iter()
        .enumerate()
        .map(|(i, &bit)| b.named_buf(bit, &format!("fd_instr_d[{i}]")))
        .collect();
    let not_stall = b.not(stall_w);
    let pipe_instr = b.reg_en(&fd_d, not_stall, 0, "pipe_instr");
    let pipe_pc = b.reg_en(&pc_f, not_stall, 0, "pipe_pc");
    let not_redirect = b.not(redirect_w);
    let pipe_valid_fb = fwd(&mut b, "pipe_valid_fb");
    let valid_d = b.mux(stall_w, pipe_valid_fb, not_redirect);
    let pipe_valid = b.dff(valid_d, false, "pipe_valid");
    b.bind_bit(pipe_valid_fb, pipe_valid);

    // ---- decode stage ----
    let (instr32, is_c, c_illegal) = build_expander(&mut b, &pipe_instr);

    // Form matchers for every 32-bit form.
    let mut sel = std::collections::HashMap::new();
    for f in RvInstr::ALL {
        if f.is_compressed() {
            continue;
        }
        let p = f.pattern();
        let hit = b.match_pattern(&instr32, p.mask as u64, p.value as u64);
        sel.insert(f, hit);
    }
    let m = |f: RvInstr| -> NetId { sel[&f] };
    use RvInstr::*;

    let group = |b: &mut RtlBuilder, fs: &[RvInstr], sel: &std::collections::HashMap<RvInstr, NetId>| {
        let bits: Vec<NetId> = fs.iter().map(|f| sel[f]).collect();
        b.or_many(&bits)
    };

    let is_branch = group(&mut b, &[Beq, Bne, Blt, Bge, Bltu, Bgeu], &sel);
    let is_load = group(&mut b, &[Lb, Lh, Lw, Lbu, Lhu], &sel);
    let is_store = group(&mut b, &[Sb, Sh, Sw], &sel);
    let is_opimm = group(&mut b, &[Addi, Slti, Sltiu, Xori, Ori, Andi, Slli, Srli, Srai], &sel);
    let is_op = group(
        &mut b,
        &[Add, Sub, Sll, Slt, Sltu, Xor, Srl, Sra, Or, And],
        &sel,
    );
    let is_mul = group(&mut b, &[Mul, Mulh, Mulhsu, Mulhu], &sel);
    let is_div = group(&mut b, &[Div, Divu, Rem, Remu], &sel);
    let is_muldiv = b.or2(is_mul, is_div);
    let is_csr = group(&mut b, &[Csrrw, Csrrs, Csrrc, Csrrwi, Csrrsi, Csrrci], &sel);
    let is_fence = group(&mut b, &[Fence, FenceI], &sel);
    let any_known = {
        let groups = [
            m(Lui), m(Auipc), m(Jal), m(Jalr), is_branch, is_load, is_store, is_opimm,
            is_op, is_muldiv, is_csr, is_fence, m(Ecall), m(Ebreak),
        ];
        b.or_many(&groups)
    };
    let not_known = b.not(any_known);
    let illegal = b.or2(not_known, c_illegal);

    // ---- register file ----
    let rs1_a = instr32.slice(15, 20);
    let rs2_a = instr32.slice(20, 25);
    let rd_a = instr32.slice(7, 12);
    // Write port wires (resolved at the end).
    let rf_wen = fwd(&mut b, "rf_wen_w");
    let rf_wdata: Word = (0..32).map(|i| fwd(&mut b, &format!("rf_wdata_w{i}"))).collect();
    let x0 = b.constant(0, 32);
    let mut regs: Vec<Word> = Vec::with_capacity(32);
    regs.push(x0.clone());
    for r in 1..32 {
        let hit = b.decode_index(&rd_a, r);
        let we = b.and2(hit, rf_wen);
        regs.push(b.reg_en(&rf_wdata, we, 0, &format!("x{r}")));
    }
    let rs1 = b.regfile_read(&regs, &rs1_a);
    let rs2 = b.regfile_read(&regs, &rs2_a);

    // ---- immediates ----
    let sign = instr32.bit(31);
    let imm_i = {
        let lo = instr32.slice(20, 32);
        b.extend(&lo, 32, true)
    };
    let imm_s = {
        let lo = instr32.slice(7, 12);
        let hi = instr32.slice(25, 32);
        let w = lo.concat(&hi);
        b.extend(&w, 32, true)
    };
    let imm_b = {
        let w: Word = [
            zero,
            instr32.bit(8), instr32.bit(9), instr32.bit(10), instr32.bit(11),
            instr32.bit(25), instr32.bit(26), instr32.bit(27), instr32.bit(28),
            instr32.bit(29), instr32.bit(30),
            instr32.bit(7),
            sign,
        ]
        .into_iter()
        .collect();
        b.extend(&w, 32, true)
    };
    let imm_u: Word = {
        let hi = instr32.slice(12, 32);
        let lo = b.constant(0, 12);
        lo.concat(&hi)
    };
    let imm_j = {
        let w: Word = [
            zero,
            instr32.bit(21), instr32.bit(22), instr32.bit(23), instr32.bit(24),
            instr32.bit(25), instr32.bit(26), instr32.bit(27), instr32.bit(28),
            instr32.bit(29), instr32.bit(30),
            instr32.bit(20),
            instr32.bit(12), instr32.bit(13), instr32.bit(14), instr32.bit(15),
            instr32.bit(16), instr32.bit(17), instr32.bit(18), instr32.bit(19),
            sign,
        ]
        .into_iter()
        .collect();
        b.extend(&w, 32, true)
    };

    // ---- ALU ----
    let use_imm = {
        let x = b.or2(is_opimm, is_load);
        let y = b.or2(x, is_store);
        b.or2(y, m(Jalr))
    };
    let op_b_imm = b.mux_word(is_store, &imm_s, &imm_i);
    let op_b = b.mux_word(use_imm, &op_b_imm, &rs2);
    let op_a = rs1.clone();

    // Adder / subtractor.
    let is_sub = {
        let slt = b.or2(m(Slt), m(Sltu));
        let slti = b.or2(m(Slti), m(Sltiu));
        let s = b.or2(slt, slti);
        let s = b.or2(s, m(Sub));
        b.or2(s, is_branch)
    };
    let sum = b.add(&op_a, &op_b);
    let (diff, no_borrow) = b.sub_with_borrow(&op_a, &op_b);
    let addsub = b.mux_word(is_sub, &diff, &sum);

    // Comparisons (shared by SLT and branches).
    let eq = b.eq(&op_a, &op_b);
    let ltu = b.not(no_borrow);
    let lt = b.lt_signed(&op_a, &op_b);

    // Logic ops.
    let xor_r = b.xor_word(&op_a, &op_b);
    let or_r = b.or_word(&op_a, &op_b);
    let and_r = b.and_word(&op_a, &op_b);

    // Shifter.
    let shamt = op_b.slice(0, 5);
    let shl_r = b.shl(&op_a, &shamt);
    let shr_r = b.shr(&op_a, &shamt);
    let sar_r = b.sar(&op_a, &shamt);

    // SLT results.
    let slt_bit = lt;
    let sltu_bit = ltu;
    let slt_w = {
        let mut bits = vec![slt_bit];
        bits.resize(32, zero);
        Word::from_bits(bits)
    };
    let sltu_w = {
        let mut bits = vec![sltu_bit];
        bits.resize(32, zero);
        Word::from_bits(bits)
    };

    // ALU result mux.
    let mut alu = addsub.clone();
    let sel_xor = b.or2(m(Xor), m(Xori));
    alu = b.mux_word(sel_xor, &xor_r, &alu);
    let sel_or = b.or2(m(Or), m(Ori));
    alu = b.mux_word(sel_or, &or_r, &alu);
    let sel_and = b.or2(m(And), m(Andi));
    alu = b.mux_word(sel_and, &and_r, &alu);
    let sel_sll = b.or2(m(Sll), m(Slli));
    alu = b.mux_word(sel_sll, &shl_r, &alu);
    let sel_srl = b.or2(m(Srl), m(Srli));
    alu = b.mux_word(sel_srl, &shr_r, &alu);
    let sel_sra = b.or2(m(Sra), m(Srai));
    alu = b.mux_word(sel_sra, &sar_r, &alu);
    let sel_slt = b.or2(m(Slt), m(Slti));
    alu = b.mux_word(sel_slt, &slt_w, &alu);
    let sel_sltu = b.or2(m(Sltu), m(Sltiu));
    alu = b.mux_word(sel_sltu, &sltu_w, &alu);
    // LUI: imm_u ; AUIPC: pc + imm_u.
    alu = b.mux_word(sel[&Lui], &imm_u, &alu);
    let auipc_r = b.add(&pipe_pc, &imm_u);
    alu = b.mux_word(sel[&Auipc], &auipc_r, &alu);

    // ---- branches / jumps ----
    let cond = {
        let neq = b.not(eq);
        let nlt = b.not(lt);
        let nltu = b.not(ltu);
        let mut c = zero;
        let t = b.and2(m(Beq), eq);
        c = b.or2(c, t);
        let t = b.and2(m(Bne), neq);
        c = b.or2(c, t);
        let t = b.and2(m(Blt), lt);
        c = b.or2(c, t);
        let t = b.and2(m(Bge), nlt);
        c = b.or2(c, t);
        let t = b.and2(m(Bltu), ltu);
        c = b.or2(c, t);
        let t = b.and2(m(Bgeu), nltu);
        c = b.or2(c, t);
        c
    };
    let branch_taken = b.and2(is_branch, cond);
    let branch_tgt = b.add(&pipe_pc, &imm_b);
    let jal_tgt = b.add(&pipe_pc, &imm_j);
    let jalr_sum = sum.clone(); // rs1 + imm_i (op_b = imm_i for jalr)
    let jalr_tgt = {
        let mut bits = jalr_sum.bits().to_vec();
        bits[0] = zero;
        Word::from_bits(bits)
    };

    // ---- load/store unit ----
    let mem_addr = sum.clone(); // rs1 + imm (I or S)
    let a0 = mem_addr.bit(0);
    let a1 = mem_addr.bit(1);
    let word_addr: Word = {
        let mut bits = mem_addr.bits().to_vec();
        bits[0] = zero;
        bits[1] = zero;
        Word::from_bits(bits)
    };
    // Load data alignment: shift right by 8*addr[1:0].
    let sh_amt: Word = [zero, zero, zero, a0, a1].into_iter().collect();
    let aligned_load = b.shr(&data_rdata, &sh_amt);
    let lb_w = {
        let byte = aligned_load.slice(0, 8);
        b.extend(&byte, 32, true)
    };
    let lbu_w = {
        let byte = aligned_load.slice(0, 8);
        b.extend(&byte, 32, false)
    };
    let lh_w = {
        let half = aligned_load.slice(0, 16);
        b.extend(&half, 32, true)
    };
    let lhu_w = {
        let half = aligned_load.slice(0, 16);
        b.extend(&half, 32, false)
    };
    let mut load_val = aligned_load.clone();
    load_val = b.mux_word(sel[&Lb], &lb_w, &load_val);
    load_val = b.mux_word(sel[&Lbu], &lbu_w, &load_val);
    load_val = b.mux_word(sel[&Lh], &lh_w, &load_val);
    load_val = b.mux_word(sel[&Lhu], &lhu_w, &load_val);
    // Store alignment: shift left by 8*addr[1:0].
    let store_data = b.shl(&rs2, &sh_amt);
    // Byte enables.
    let size_b = m(Sb);
    let size_h = m(Sh);
    let be = {
        // one-hot base mask: SB -> 0001, SH -> 0011, SW -> 1111, then shifted
        // left by addr[1:0].
        let base0 = one;
        let base1 = {
            let nb = b.not(size_b);
            nb // SH or SW
        };
        let base23 = {
            let nbh = b.or2(size_b, size_h);
            b.not(nbh) // SW only
        };
        let base: Word = [base0, base1, base23, base23].into_iter().collect();
        let sh2: Word = [a0, a1].into_iter().collect();
        b.shl(&base, &sh2)
    };

    // ---- iterative multiply/divide unit ----
    let busy_fb = fwd(&mut b, "md_busy_fb");
    let a31 = rs1.msb();
    let b31 = rs2.msb();
    let signed_div = b.or2(m(Div), m(Rem));
    let neg_a = b.and2(a31, signed_div);
    let neg_b = b.and2(b31, signed_div);
    let zero32 = b.constant(0, 32);
    let rs1_neg = b.sub(&zero32, &rs1);
    let rs2_neg = b.sub(&zero32, &rs2);
    let abs_a = b.mux_word(neg_a, &rs1_neg, &rs1);
    let abs_b = b.mux_word(neg_b, &rs2_neg, &rs2);

    let start = {
        let req = b.and2(is_muldiv, pipe_valid);
        let nb_ = b.not(busy_fb);
        b.and2(req, nb_)
    };
    let cnt_fb: Word = (0..6).map(|i| fwd(&mut b, &format!("md_cnt_fb{i}"))).collect();
    let acc_lo_fb: Word = (0..32).map(|i| fwd(&mut b, &format!("md_lo_fb{i}"))).collect();
    let acc_hi_fb: Word = (0..32).map(|i| fwd(&mut b, &format!("md_hi_fb{i}"))).collect();

    // Multiply step: if lo[0], hi += rs1 (unsigned); shift {c,hi,lo} right.
    let addend = {
        let lo0 = acc_lo_fb.bit(0);
        let gated: Word = rs1.bits().iter().map(|&x| b.and2(x, lo0)).collect();
        gated
    };
    let (mul_sum, mul_c) = b.add_with_carry(&acc_hi_fb, &addend, None);
    let mul_next_hi: Word = {
        let mut bits: Vec<NetId> = mul_sum.bits()[1..].to_vec();
        bits.push(mul_c);
        Word::from_bits(bits)
    };
    let mul_next_lo: Word = {
        let mut bits: Vec<NetId> = acc_lo_fb.bits()[1..].to_vec();
        bits.push(mul_sum.bit(0));
        Word::from_bits(bits)
    };

    // Divide step: rem' = (hi << 1) | lo[31]; diff = rem' - |b|;
    // if no_borrow: hi = diff, lo = (lo << 1)|1 else hi = rem', lo = lo<<1.
    let remp: Word = {
        let mut bits = vec![acc_lo_fb.bit(31)];
        bits.extend_from_slice(&acc_hi_fb.bits()[..31]);
        Word::from_bits(bits)
    };
    let (ddiff, dnb) = b.sub_with_borrow(&remp, &abs_b);
    let div_next_hi = b.mux_word(dnb, &ddiff, &remp);
    let div_next_lo: Word = {
        let mut bits = vec![dnb];
        bits.extend_from_slice(&acc_lo_fb.bits()[..31]);
        Word::from_bits(bits)
    };

    let step_hi = b.mux_word(is_div, &div_next_hi, &mul_next_hi);
    let step_lo = b.mux_word(is_div, &div_next_lo, &mul_next_lo);

    // Init values at start.
    let init_lo = b.mux_word(is_div, &abs_a, &rs2); // mul multiplies rs1 * rs2 with rs2 in lo
    let init_hi = zero32.clone();

    let cnt_is_31 = b.match_pattern(&cnt_fb, 0x3F, 31);
    let done = b.and2(busy_fb, cnt_is_31);
    let busy_next = {
        // busy' = start | (busy & !done)
        let nd = b.not(done);
        let keep = b.and2(busy_fb, nd);
        b.or2(start, keep)
    };
    let busy = b.dff(busy_next, false, "md_busy");
    b.bind_bit(busy_fb, busy);

    let cnt_plus = {
        let one6 = b.constant(1, 6);
        b.add(&cnt_fb, &one6)
    };
    let zero6 = b.constant(0, 6);
    let cnt_next = {
        let stepped = b.mux_word(busy_fb, &cnt_plus, &cnt_fb);
        b.mux_word(start, &zero6, &stepped)
    };
    let cnt = b.reg(&cnt_next, 0, "md_cnt");
    b.bind(&cnt_fb, &cnt);

    let lo_next = {
        let stepped = b.mux_word(busy_fb, &step_lo, &acc_lo_fb);
        b.mux_word(start, &init_lo, &stepped)
    };
    let hi_next = {
        let stepped = b.mux_word(busy_fb, &step_hi, &acc_hi_fb);
        b.mux_word(start, &init_hi, &stepped)
    };
    let acc_lo = b.reg(&lo_next, 0, "md_lo");
    let acc_hi = b.reg(&hi_next, 0, "md_hi");
    b.bind(&acc_lo_fb, &acc_lo);
    b.bind(&acc_hi_fb, &acc_hi);

    // Result fixups (combinational, from the final step values).
    let prod_lo = &step_lo;
    let prod_hi = &step_hi;
    // mulh corrections: subtract (a31? rs2 : 0) and (b31? rs1 : 0) for the
    // signed variants.
    let corr_a: Word = {
        let want = b.or2(m(Mulh), m(Mulhsu));
        let en = b.and2(want, a31);
        rs2.bits().iter().map(|&x| b.and2(x, en)).collect()
    };
    let corr_b: Word = {
        let en = b.and2(m(Mulh), b31);
        rs1.bits().iter().map(|&x| b.and2(x, en)).collect()
    };
    let hi_c1 = b.sub(prod_hi, &corr_a);
    let hi_c2 = b.sub(&hi_c1, &corr_b);
    // div/rem sign fixups.
    let b_nz = {
        let z = b.is_zero(&rs2);
        b.not(z)
    };
    let q_u = prod_lo.clone();
    let r_u = prod_hi.clone();
    let q_neg_w = b.sub(&zero32, &q_u);
    let r_neg_w = b.sub(&zero32, &r_u);
    let signs_differ = b.xor2(a31, b31);
    let negq = {
        let x = b.and2(signed_div, signs_differ);
        b.and2(x, b_nz)
    };
    let negr = {
        let x = b.and2(signed_div, a31);
        b.and2(x, b_nz)
    };
    let q_signed = b.mux_word(negq, &q_neg_w, &q_u);
    let r_signed = b.mux_word(negr, &r_neg_w, &r_u);
    let ones32 = b.constant(0xFFFF_FFFF, 32);
    let q_final = b.mux_word(b_nz, &q_signed, &ones32);
    let r_final = b.mux_word(b_nz, &r_signed, &rs1);

    let mut md_result = prod_lo.clone(); // MUL
    let want_hi = {
        let x = b.or2(m(Mulh), m(Mulhsu));
        b.or2(x, m(Mulhu))
    };
    md_result = b.mux_word(want_hi, &hi_c2, &md_result);
    // mulhu has no corrections: corr words are zero for it by construction.
    let want_q = b.or2(m(Div), m(Divu));
    md_result = b.mux_word(want_q, &q_final, &md_result);
    let want_r = b.or2(m(Rem), m(Remu));
    md_result = b.mux_word(want_r, &r_final, &md_result);

    // ---- CSRs ----
    let csr_a = instr32.slice(20, 32);
    let c_mstatus = b.match_pattern(&csr_a, 0xFFF, 0x300);
    let c_mtvec = b.match_pattern(&csr_a, 0xFFF, 0x305);
    let c_mscratch = b.match_pattern(&csr_a, 0xFFF, 0x340);
    let c_mepc = b.match_pattern(&csr_a, 0xFFF, 0x341);
    let c_mcause = b.match_pattern(&csr_a, 0xFFF, 0x342);
    let c_mcycle = b.match_pattern(&csr_a, 0xFFF, 0xB00);

    let mstatus_fb: Word = (0..32).map(|i| fwd(&mut b, &format!("mstatus_fb{i}"))).collect();
    let mtvec_fb: Word = (0..32).map(|i| fwd(&mut b, &format!("mtvec_fb{i}"))).collect();
    let mscratch_fb: Word = (0..32).map(|i| fwd(&mut b, &format!("mscratch_fb{i}"))).collect();
    let mepc_fb: Word = (0..32).map(|i| fwd(&mut b, &format!("mepc_fb{i}"))).collect();
    let mcause_fb: Word = (0..32).map(|i| fwd(&mut b, &format!("mcause_fb{i}"))).collect();
    let mcycle_fb: Word = (0..32).map(|i| fwd(&mut b, &format!("mcycle_fb{i}"))).collect();

    let mut csr_rdata = b.constant(0, 32);
    csr_rdata = b.mux_word(c_mstatus, &mstatus_fb, &csr_rdata);
    csr_rdata = b.mux_word(c_mtvec, &mtvec_fb, &csr_rdata);
    csr_rdata = b.mux_word(c_mscratch, &mscratch_fb, &csr_rdata);
    csr_rdata = b.mux_word(c_mepc, &mepc_fb, &csr_rdata);
    csr_rdata = b.mux_word(c_mcause, &mcause_fb, &csr_rdata);
    csr_rdata = b.mux_word(c_mcycle, &mcycle_fb, &csr_rdata);

    let csr_imm_op = {
        let x = b.or2(m(Csrrwi), m(Csrrsi));
        b.or2(x, m(Csrrci))
    };
    let zimm = b.extend(&rs1_a, 32, false);
    let csr_src = b.mux_word(csr_imm_op, &zimm, &rs1);
    let csr_set = b.or_word(&csr_rdata, &csr_src);
    let csr_clr = {
        let n = b.not_word(&csr_src);
        b.and_word(&csr_rdata, &n)
    };
    let is_w = b.or2(m(Csrrw), m(Csrrwi));
    let is_s = b.or2(m(Csrrs), m(Csrrsi));
    let mut csr_wdata = csr_src.clone();
    csr_wdata = b.mux_word(is_s, &csr_set, &csr_wdata);
    let is_cl = b.or2(m(Csrrc), m(Csrrci));
    csr_wdata = b.mux_word(is_cl, &csr_clr, &csr_wdata);
    let _ = is_w;

    // ---- traps & control resolution ----
    let exec = fwd(&mut b, "exec_w"); // pipe_valid && !stall (bound below)
    let trap = {
        let ee = b.or2(m(Ecall), m(Ebreak));
        let t = b.or2(ee, illegal);
        b.and2(t, exec)
    };
    let csr_we = {
        let x = b.and2(is_csr, exec);
        let nt = b.not(trap);
        b.and2(x, nt)
    };

    let wr = |b: &mut RtlBuilder, fbw: &Word, sel_csr: NetId, csr_we: NetId, wdata: &Word, extra_we: Option<(NetId, &Word)>, init: u64, name: &str| -> Word {
        let we = b.and2(sel_csr, csr_we);
        let mut next = b.mux_word(we, wdata, fbw);
        if let Some((ew, ev)) = extra_we {
            next = b.mux_word(ew, ev, &next);
        }
        let q = b.reg(&next, init, name);
        b.bind(fbw, &q);
        q
    };

    let _mstatus = wr(&mut b, &mstatus_fb, c_mstatus, csr_we, &csr_wdata, None, 0, "mstatus");
    let mtvec = wr(&mut b, &mtvec_fb, c_mtvec, csr_we, &csr_wdata, None, 0, "mtvec");
    let _mscratch = wr(&mut b, &mscratch_fb, c_mscratch, csr_we, &csr_wdata, None, 0, "mscratch");
    let _mepc = wr(
        &mut b, &mepc_fb, c_mepc, csr_we, &csr_wdata,
        Some((trap, &pipe_pc)),
        0, "mepc",
    );
    // mcause value on trap: 2 (illegal), 3 (ebreak), 11 (ecall).
    let cause = {
        let c2 = b.constant(2, 32);
        let c3 = b.constant(3, 32);
        let c11 = b.constant(11, 32);
        let x = b.mux_word(m(Ebreak), &c3, &c2);
        b.mux_word(m(Ecall), &c11, &x)
    };
    let _mcause = wr(
        &mut b, &mcause_fb, c_mcause, csr_we, &csr_wdata,
        Some((trap, &cause)),
        0, "mcause",
    );
    // mcycle free-runs (write overrides increment).
    let mcycle_plus = {
        let one32 = b.constant(1, 32);
        b.add(&mcycle_fb, &one32)
    };
    let mcycle_next = {
        let we = b.and2(c_mcycle, csr_we);
        b.mux_word(we, &csr_wdata, &mcycle_plus)
    };
    let mcycle = b.reg(&mcycle_next, 0, "mcycle");
    b.bind(&mcycle_fb, &mcycle);
    let _ = mcycle;

    // ---- writeback ----
    let seq_sz = b.mux_word(is_c, &two, &four);
    let seq_pc = b.add(&pipe_pc, &seq_sz);
    let is_jump = b.or2(m(Jal), m(Jalr));
    let mut wb = alu.clone();
    wb = b.mux_word(is_load, &load_val, &wb);
    wb = b.mux_word(is_csr, &csr_rdata, &wb);
    wb = b.mux_word(is_jump, &seq_pc, &wb);
    wb = b.mux_word(is_muldiv, &md_result, &wb);
    b.bind(&rf_wdata, &wb);

    let writes_rd = {
        let x = b.or2(is_opimm, is_op);
        let x = b.or2(x, is_load);
        let x = b.or2(x, is_csr);
        let x = b.or2(x, is_jump);
        let x = b.or2(x, m(Lui));
        let x = b.or2(x, m(Auipc));
        b.or2(x, is_muldiv)
    };
    let rd_nz = {
        let z = b.is_zero(&rd_a);
        b.not(z)
    };
    let wen = {
        let x = b.and2(writes_rd, exec);
        let x = b.and2(x, rd_nz);
        let nt = b.not(trap);
        b.and2(x, nt)
    };
    b.bind_bit(rf_wen, wen);

    // ---- pipeline control ----
    // stall while a multi-cycle op is in flight and not finishing.
    // Note: mul/div forms are always legal and never trap, so the stall
    // term needs no trap qualifier (and must not have one — trap depends on
    // `exec`, which depends on stall).
    let stall_v = {
        let req = b.and2(is_muldiv, pipe_valid);
        let nd = b.not(done);
        b.and2(req, nd)
    };
    b.bind_bit(stall_w, stall_v);
    let exec_v = {
        let ns = b.not(stall_v);
        b.and2(pipe_valid, ns)
    };
    b.bind_bit(exec, exec_v);

    let taken = {
        let t = b.or2(is_jump, branch_taken);
        b.and2(t, exec_v)
    };
    let redirect_v = b.or2(taken, trap);
    b.bind_bit(redirect_w, redirect_v);
    let mut tgt = branch_tgt.clone();
    tgt = b.mux_word(m(Jal), &jal_tgt, &tgt);
    tgt = b.mux_word(m(Jalr), &jalr_tgt, &tgt);
    tgt = b.mux_word(trap, &mtvec, &tgt);
    b.bind(&target_w, &tgt);

    // ---- outputs ----
    b.output_word("instr_addr_o", &pc_f);
    b.output_word("data_addr_o", &word_addr);
    b.output_word("data_wdata_o", &store_data);
    let data_we = b.and2(is_store, exec_v);
    let data_we = {
        let nt = b.not(trap);
        b.and2(data_we, nt)
    };
    b.output_bit("data_we_o", data_we);
    let be_gated: Word = be
        .bits()
        .iter()
        .map(|&x| b.and2(x, data_we))
        .collect();
    b.output_word("data_be_o", &be_gated);
    let data_req = {
        let l = b.and2(is_load, exec_v);
        b.or2(l, data_we)
    };
    b.output_bit("data_req_o", data_req);
    b.output_bit("retire_o", exec_v);
    b.output_word("retire_pc_o", &pipe_pc);
    b.output_bit("trap_o", trap);
    let ill_out = b.and2(illegal, pipe_valid);
    b.output_bit("illegal_o", ill_out);
    for (r, reg) in regs.iter().enumerate().skip(1) {
        b.output_word(&format!("x{r}_o"), reg);
    }

    let cut_fetch = fd_d.bits().to_vec();
    let regs_nets: Vec<Vec<NetId>> = regs.iter().map(|w| w.bits().to_vec()).collect();
    let instr_in = instr_i.bits().to_vec();
    let data_rdata_in = data_rdata.bits().to_vec();
    let instr_addr_out = pc_f.bits().to_vec();
    let data_addr_out = word_addr.bits().to_vec();
    let data_wdata_out = store_data.bits().to_vec();
    let data_be_out = be_gated.bits().to_vec();
    let retire_pc_out = pipe_pc.bits().to_vec();

    let netlist = b.finish();
    IbexCore {
        netlist,
        instr_in,
        data_rdata_in,
        instr_addr_out,
        data_addr_out,
        data_wdata_out,
        data_be_out,
        data_we_out: data_we,
        retire_out: exec_v,
        retire_pc_out,
        trap_out: trap,
        cut_fetch,
        regs: regs_nets,
    }
}

/// Re-derive an [`IbexCore`] handle from a *transformed* netlist (e.g. the
/// output of a PDAT run) by looking up the preserved port names. The
/// cutpoint handles are gone (they were internal nets); everything the
/// execution harness needs survives.
///
/// # Panics
///
/// Panics if the netlist does not expose the Ibex-class port set.
pub fn rebind_ibex(netlist: Netlist) -> IbexCore {
    let input_word = |nl: &Netlist, name: &str, w: usize| -> Vec<NetId> {
        (0..w)
            .map(|i| {
                nl.find_net(&format!("{name}[{i}]"))
                    .unwrap_or_else(|| panic!("missing input {name}[{i}]"))
            })
            .collect()
    };
    let outputs: std::collections::HashMap<String, NetId> = netlist
        .outputs()
        .iter()
        .map(|(n, id)| (n.clone(), *id))
        .collect();
    let output_word = |name: &str, w: usize| -> Vec<NetId> {
        (0..w)
            .map(|i| {
                *outputs
                    .get(&format!("{name}[{i}]"))
                    .unwrap_or_else(|| panic!("missing output {name}[{i}]"))
            })
            .collect()
    };
    let output_bit = |name: &str| -> NetId {
        *outputs
            .get(name)
            .unwrap_or_else(|| panic!("missing output {name}"))
    };
    let instr_in = input_word(&netlist, "instr_i", 32);
    let data_rdata_in = input_word(&netlist, "data_rdata_i", 32);
    let instr_addr_out = output_word("instr_addr_o", 32);
    let data_addr_out = output_word("data_addr_o", 32);
    let data_wdata_out = output_word("data_wdata_o", 32);
    let data_be_out = output_word("data_be_o", 4);
    let data_we_out = output_bit("data_we_o");
    let retire_out = output_bit("retire_o");
    let retire_pc_out = output_word("retire_pc_o", 32);
    let trap_out = output_bit("trap_o");
    let mut regs: Vec<Vec<NetId>> = Vec::with_capacity(32);
    // x0 has no port; reuse x1's nets (never read: the harness returns 0).
    regs.push(output_word("x1_o", 32));
    for r in 1..32 {
        regs.push(output_word(&format!("x{r}_o"), 32));
    }
    IbexCore {
        netlist,
        instr_in,
        data_rdata_in,
        instr_addr_out,
        data_addr_out,
        data_wdata_out,
        data_be_out,
        data_we_out,
        retire_out,
        retire_pc_out,
        trap_out,
        cut_fetch: Vec::new(),
        regs,
    }
}
