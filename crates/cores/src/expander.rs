//! Hardware RVC (compressed) instruction expander.
//!
//! This is the gate-level counterpart of
//! [`pdat_isa::rv32::expand_compressed`]: a combinational circuit that maps
//! a 16-bit compressed halfword to its 32-bit equivalent. It is exactly the
//! logic whose *low marginal cost* explains the paper's observation that
//! removing the c-extension saves little area.

use pdat_rtl::{RtlBuilder, Word};
use pdat_netlist::NetId;

/// Build the expander: given the raw 32-bit fetch word, produce
/// `(expanded_instr, is_compressed, illegal)`.
///
/// If the low two bits are `11` the word passes through unchanged;
/// otherwise the RVC expansion is selected by quadrant/funct3.
pub fn build_expander(b: &mut RtlBuilder, fetch: &Word) -> (Word, NetId, NetId) {
    assert_eq!(fetch.width(), 32);
    let half = fetch.slice(0, 16);
    let is32 = {
        let b0 = fetch.bit(0);
        let b1 = fetch.bit(1);
        b.and2(b0, b1)
    };
    let is_c = b.not(is32);

    let (expanded, illegal_c) = expand_circuit(b, &half);
    let out = b.mux_word(is_c, &expanded, fetch);
    let illegal = b.and2(is_c, illegal_c);
    (out, is_c, illegal)
}

/// The 16-bit → 32-bit expansion proper. Returns `(instr32, illegal)`.
fn expand_circuit(b: &mut RtlBuilder, h: &Word) -> (Word, NetId) {
    let zero = b.zero();
    let one = b.one();
    let bit = |i: usize| h.bit(i);

    // Register fields.
    let rdp: Word = [bit(2), bit(3), bit(4), one, zero].into_iter().collect(); // 8 + h[4:2]
    let rs1p: Word = [bit(7), bit(8), bit(9), one, zero].into_iter().collect();
    let rd_full = h.slice(7, 12);
    let rs2_full = h.slice(2, 7);
    let x0 = b.constant(0, 5);
    let x1 = b.constant(1, 5);
    let x2 = b.constant(2, 5);

    // Common immediates.
    // CI-type imm6: {h[12], h[6:2]} sign-extended to 12.
    let imm6: Word = [bit(2), bit(3), bit(4), bit(5), bit(6), bit(12)]
        .into_iter()
        .collect();
    let imm6_s12 = b.extend(&imm6, 12, true);

    // CL/CS word offset: {h[5], h[12:10], h[6], 2'b00} -> uimm7.
    let immw: Word = [
        zero,
        zero,
        bit(6),
        bit(10),
        bit(11),
        bit(12),
        bit(5),
    ]
    .into_iter()
    .collect();
    let immw12 = b.extend(&immw, 12, false);

    // C.ADDI16SP imm: {h[12], h[4:3], h[5], h[2], h[6], 4'b0000} signed 10.
    let imm16sp: Word = [
        zero,
        zero,
        zero,
        zero,
        bit(6),
        bit(2),
        bit(5),
        bit(3),
        bit(4),
        bit(12),
    ]
    .into_iter()
    .collect();
    let imm16sp12 = b.extend(&imm16sp, 12, true);

    // C.ADDI4SPN imm: {h[10:7], h[12:11], h[5], h[6], 2'b00} unsigned 10.
    let imm4spn: Word = [
        zero,
        zero,
        bit(6),
        bit(5),
        bit(11),
        bit(12),
        bit(7),
        bit(8),
        bit(9),
        bit(10),
    ]
    .into_iter()
    .collect();
    let imm4spn12 = b.extend(&imm4spn, 12, false);

    // LWSP offset: {h[3:2], h[12], h[6:4], 2'b00} unsigned 8.
    let immlwsp: Word = [zero, zero, bit(4), bit(5), bit(6), bit(12), bit(2), bit(3)]
        .into_iter()
        .collect();
    let immlwsp12 = b.extend(&immlwsp, 12, false);

    // SWSP offset: {h[8:7], h[12:9], 2'b00} unsigned 8.
    let immswsp: Word = [zero, zero, bit(9), bit(10), bit(11), bit(12), bit(7), bit(8)]
        .into_iter()
        .collect();
    let immswsp12 = b.extend(&immswsp, 12, false);

    // CJ offset (12-bit signed): {h[12], h[8], h[10:9], h[6], h[7], h[2],
    // h[11], h[5:3], 0}.
    let cj: Word = [
        zero,
        bit(3),
        bit(4),
        bit(5),
        bit(11),
        bit(2),
        bit(7),
        bit(6),
        bit(9),
        bit(10),
        bit(8),
        bit(12),
    ]
    .into_iter()
    .collect();

    // CB offset (9-bit signed): {h[12], h[6:5], h[2], h[11:10], h[4:3], 0}.
    let cb: Word = [
        zero,
        bit(3),
        bit(4),
        bit(10),
        bit(11),
        bit(2),
        bit(5),
        bit(6),
        bit(12),
    ]
    .into_iter()
    .collect();

    // Shift amount: {h[12], h[6:2]}.
    let shamt: Word = [bit(2), bit(3), bit(4), bit(5), bit(6)].into_iter().collect();

    // Builders for each 32-bit format.
    let opcode = |b: &mut RtlBuilder, v: u64| b.constant(v, 7);
    let f3 = |b: &mut RtlBuilder, v: u64| b.constant(v, 3);

    // Compose candidate expansions.
    let op_imm = opcode(b, 0x13);
    let op_load = opcode(b, 0x03);
    let op_store = opcode(b, 0x23);
    let op_lui = opcode(b, 0x37);
    let op_op = opcode(b, 0x33);
    let op_jal = opcode(b, 0x6F);
    let op_jalr = opcode(b, 0x67);
    let op_branch = opcode(b, 0x63);

    let f000 = f3(b, 0);
    let f001 = f3(b, 1);
    let f010 = f3(b, 2);
    let f100 = f3(b, 4);
    let f101 = f3(b, 5);
    let f110 = f3(b, 6);
    let f111 = f3(b, 7);

    let rd5 = &rd_full;
    let rs25 = &rs2_full;

    // addi rd, rd, imm6  (C.ADDI) — also C.NOP.
    let e_caddi = op_imm
        .concat(rd5)
        .concat(&f000)
        .concat(rd5)
        .concat(&imm6_s12);
    // addi rd, x0, imm6 (C.LI)
    let e_cli = op_imm
        .concat(rd5)
        .concat(&f000)
        .concat(&x0)
        .concat(&imm6_s12);
    // addi x2, x2, imm16sp (C.ADDI16SP)
    let e_c16sp = op_imm
        .concat(&x2)
        .concat(&f000)
        .concat(&x2)
        .concat(&imm16sp12);
    // lui rd, imm (C.LUI): imm6 sign-extended into the 20-bit U field.
    let u20 = b.extend(&imm6, 20, true);
    let e_clui = op_lui.concat(rd5).concat(&u20);
    // addi rd', x2, imm4spn (C.ADDI4SPN)
    let e_c4spn = op_imm
        .concat(&rdp)
        .concat(&f000)
        .concat(&x2)
        .concat(&imm4spn12);
    // lw rd', imm(rs1') (C.LW)
    let e_clw = op_load
        .concat(&rdp)
        .concat(&f010)
        .concat(&rs1p)
        .concat(&immw12);
    // sw rs2', imm(rs1') (C.SW): S-type split imm.
    let e_csw = {
        let lo5 = immw12.slice(0, 5);
        let hi7 = immw12.slice(5, 12);
        op_store
            .concat(&lo5)
            .concat(&f010)
            .concat(&rs1p)
            .concat(&rdp)
            .concat(&hi7)
    };
    // lw rd, imm(sp) (C.LWSP)
    let e_clwsp = op_load
        .concat(rd5)
        .concat(&f010)
        .concat(&x2)
        .concat(&immlwsp12);
    // sw rs2, imm(sp) (C.SWSP)
    let e_cswsp = {
        let lo5 = immswsp12.slice(0, 5);
        let hi7 = immswsp12.slice(5, 12);
        op_store
            .concat(&lo5)
            .concat(&f010)
            .concat(&x2)
            .concat(rs25)
            .concat(&hi7)
    };
    // jal x1/x0, cj (C.JAL / C.J): J-type bit scramble.
    let jfmt = |b: &mut RtlBuilder, link: &Word| -> Word {
        let cj20 = b.extend(&cj, 21, true);
        // imm[19:12] | imm[11] | imm[10:1] | imm[20] above rd+opcode.
        let bits_19_12 = cj20.slice(12, 20);
        let bit_11 = cj20.slice(11, 12);
        let bits_10_1 = cj20.slice(1, 11);
        let bit_20 = cj20.slice(20, 21);
        op_jal
            .concat(link)
            .concat(&bits_19_12)
            .concat(&bit_11)
            .concat(&bits_10_1)
            .concat(&bit_20)
    };
    let e_cjal = jfmt(b, &x1);
    let e_cj = jfmt(b, &x0);
    // beq/bne rs1', x0, cb (C.BEQZ / C.BNEZ): B-type scramble.
    let bfmt = |b: &mut RtlBuilder, funct3: &Word| -> Word {
        let cb13 = b.extend(&cb, 13, true);
        let bit_11 = cb13.slice(11, 12);
        let bits_4_1 = cb13.slice(1, 5);
        let bits_10_5 = cb13.slice(5, 11);
        let bit_12 = cb13.slice(12, 13);
        op_branch
            .concat(&bit_11)
            .concat(&bits_4_1)
            .concat(funct3)
            .concat(&rs1p)
            .concat(&x0)
            .concat(&bits_10_5)
            .concat(&bit_12)
    };
    let e_cbeqz = bfmt(b, &f000);
    let e_cbnez = bfmt(b, &f001);
    // slli rd, rd, shamt (C.SLLI)
    let sh12 = b.extend(&shamt, 12, false);
    let e_cslli = op_imm.concat(rd5).concat(&f001).concat(rd5).concat(&sh12);
    // srli/srai rd', rd', shamt — funct7 = 0000000 / 0100000.
    let sh_srl = b.extend(&shamt, 12, false);
    let e_csrli = op_imm
        .concat(&rs1p)
        .concat(&f101)
        .concat(&rs1p)
        .concat(&sh_srl);
    let sra_hi = b.constant(0x400, 12); // bit 10 of imm = funct7[5]
    let sh_sra = b.or_word(&sh_srl, &sra_hi);
    let e_csrai = op_imm
        .concat(&rs1p)
        .concat(&f101)
        .concat(&rs1p)
        .concat(&sh_sra);
    // andi rd', rd', imm6 (C.ANDI)
    let e_candi = op_imm
        .concat(&rs1p)
        .concat(&f111)
        .concat(&rs1p)
        .concat(&imm6_s12);
    // R-type ops: funct7 rs2 rs1 f3 rd opcode.
    let rtype = |b: &mut RtlBuilder, f7: u64, rs2w: &Word, rs1w: &Word, funct3: &Word, rdw: &Word| -> Word {
        let f7w = b.constant(f7, 7);
        op_op
            .concat(rdw)
            .concat(funct3)
            .concat(rs1w)
            .concat(rs2w)
            .concat(&f7w)
    };
    let e_csub = rtype(b, 0x20, &rdp, &rs1p, &f000, &rs1p);
    let e_cxor = rtype(b, 0x00, &rdp, &rs1p, &f100, &rs1p);
    let e_cor = rtype(b, 0x00, &rdp, &rs1p, &f110, &rs1p);
    let e_cand = rtype(b, 0x00, &rdp, &rs1p, &f111, &rs1p);
    // C.MV: add rd, x0, rs2 ; C.JR: jalr x0, rs1, 0
    let e_cmv = rtype(b, 0x00, rs25, &x0, &f000, rd5);
    let zero12 = b.constant(0, 12);
    let e_cjr = op_jalr
        .concat(&x0)
        .concat(&f000)
        .concat(rd5)
        .concat(&zero12);
    // C.ADD: add rd, rd, rs2 ; C.JALR: jalr x1, rs1, 0 ; C.EBREAK.
    let e_cadd = rtype(b, 0x00, rs25, rd5, &f000, rd5);
    let e_cjalr = op_jalr
        .concat(&x1)
        .concat(&f000)
        .concat(rd5)
        .concat(&zero12);
    let e_ebreak = b.constant(0x0010_0073, 32);

    // --- selection logic ---
    let q = h.slice(0, 2);
    let funct3 = h.slice(13, 16);
    let q0 = b.match_pattern(&q, 0b11, 0b00);
    let q1 = b.match_pattern(&q, 0b11, 0b01);
    let q2 = b.match_pattern(&q, 0b11, 0b10);
    let f_is = |b: &mut RtlBuilder, v: u64| b.match_pattern(&funct3, 0b111, v);
    let f0 = f_is(b, 0);
    let f1 = f_is(b, 1);
    let f2 = f_is(b, 2);
    let f3s = f_is(b, 3);
    let f4 = f_is(b, 4);
    let f5 = f_is(b, 5);
    let f6 = f_is(b, 6);
    let f7 = f_is(b, 7);

    let rd_is_x2 = b.match_pattern(&rd_full, 0x1F, 2);
    let rs2_is_x0 = b.match_pattern(&rs2_full, 0x1F, 0);
    let rd_is_x0 = b.match_pattern(&rd_full, 0x1F, 0);
    let bit12 = bit(12);
    let nbit12 = b.not(bit12);

    // Quadrant 1, funct3=100 subdecode.
    let sub11_10 = h.slice(10, 12);
    let s00 = b.match_pattern(&sub11_10, 0b11, 0b00);
    let s01 = b.match_pattern(&sub11_10, 0b11, 0b01);
    let s10 = b.match_pattern(&sub11_10, 0b11, 0b10);
    let s11 = b.match_pattern(&sub11_10, 0b11, 0b11);
    let sub6_5 = h.slice(5, 7);
    let t00 = b.match_pattern(&sub6_5, 0b11, 0b00);
    let t01 = b.match_pattern(&sub6_5, 0b11, 0b01);
    let t10 = b.match_pattern(&sub6_5, 0b11, 0b10);

    // Priority mux chain: start from an illegal default (all zeros) and
    // overlay each case.
    let mut out = b.constant(0, 32);
    let mut any = b.zero();
    let overlay = |b: &mut RtlBuilder, sel: NetId, val: &Word, out: &mut Word, any: &mut NetId| {
        *out = b.mux_word(sel, val, out);
        *any = b.or2(*any, sel);
    };

    // Quadrant 0. C.ADDI4SPN with zero immediate is reserved (covers the
    // all-zero illegal halfword).
    let imm4spn_bits: Vec<_> = (5..13).map(|i| h.bit(i)).collect();
    let imm4spn_nz = b.or_many(&imm4spn_bits);
    let c4spn = {
        let x = b.and2(q0, f0);
        b.and2(x, imm4spn_nz)
    };
    overlay(b, c4spn, &e_c4spn, &mut out, &mut any);
    let clw = b.and2(q0, f2);
    overlay(b, clw, &e_clw, &mut out, &mut any);
    let csw = b.and2(q0, f6);
    overlay(b, csw, &e_csw, &mut out, &mut any);

    // Quadrant 1.
    let caddi = b.and2(q1, f0);
    overlay(b, caddi, &e_caddi, &mut out, &mut any);
    let cjal = b.and2(q1, f1);
    overlay(b, cjal, &e_cjal, &mut out, &mut any);
    let cli = b.and2(q1, f2);
    overlay(b, cli, &e_cli, &mut out, &mut any);
    let q1f3 = b.and2(q1, f3s);
    let c16sp = b.and2(q1f3, rd_is_x2);
    overlay(b, c16sp, &e_c16sp, &mut out, &mut any);
    let nrd2 = b.not(rd_is_x2);
    let clui = b.and2(q1f3, nrd2);
    overlay(b, clui, &e_clui, &mut out, &mut any);
    let q1f4 = b.and2(q1, f4);
    let csrli = b.and2(q1f4, s00);
    overlay(b, csrli, &e_csrli, &mut out, &mut any);
    let csrai = b.and2(q1f4, s01);
    overlay(b, csrai, &e_csrai, &mut out, &mut any);
    let candi = b.and2(q1f4, s10);
    overlay(b, candi, &e_candi, &mut out, &mut any);
    let q1f4s11 = {
        let x = b.and2(q1f4, s11);
        b.and2(x, nbit12)
    };
    let csub = b.and2(q1f4s11, t00);
    overlay(b, csub, &e_csub, &mut out, &mut any);
    let cxor = b.and2(q1f4s11, t01);
    overlay(b, cxor, &e_cxor, &mut out, &mut any);
    let cor = b.and2(q1f4s11, t10);
    overlay(b, cor, &e_cor, &mut out, &mut any);
    let t11 = {
        let a = b.or2(t00, t01);
        let c = b.or2(a, t10);
        b.not(c)
    };
    let cand = b.and2(q1f4s11, t11);
    overlay(b, cand, &e_cand, &mut out, &mut any);
    let cj = b.and2(q1, f5);
    overlay(b, cj, &e_cj, &mut out, &mut any);
    let cbeqz = b.and2(q1, f6);
    overlay(b, cbeqz, &e_cbeqz, &mut out, &mut any);
    let cbnez = b.and2(q1, f7);
    overlay(b, cbnez, &e_cbnez, &mut out, &mut any);

    // Quadrant 2.
    let cslli = b.and2(q2, f0);
    overlay(b, cslli, &e_cslli, &mut out, &mut any);
    let clwsp = {
        let x = b.and2(q2, f2);
        let nrd0 = b.not(rd_is_x0);
        b.and2(x, nrd0)
    };
    overlay(b, clwsp, &e_clwsp, &mut out, &mut any);
    let cswsp = b.and2(q2, f6);
    overlay(b, cswsp, &e_cswsp, &mut out, &mut any);
    let q2f4 = b.and2(q2, f4);
    let nrd0 = b.not(rd_is_x0);
    let nrs20 = b.not(rs2_is_x0);
    // bit12=0: MV / JR.
    let g0 = b.and2(q2f4, nbit12);
    let cjr = {
        let x = b.and2(g0, nrd0);
        b.and2(x, rs2_is_x0)
    };
    overlay(b, cjr, &e_cjr, &mut out, &mut any);
    let cmv = {
        let x = b.and2(g0, nrd0);
        b.and2(x, nrs20)
    };
    overlay(b, cmv, &e_cmv, &mut out, &mut any);
    // bit12=1: EBREAK / JALR / ADD.
    let g1 = b.and2(q2f4, bit12);
    let cebreak = {
        let x = b.and2(g1, rd_is_x0);
        b.and2(x, rs2_is_x0)
    };
    overlay(b, cebreak, &e_ebreak, &mut out, &mut any);
    let cjalr = {
        let x = b.and2(g1, nrd0);
        b.and2(x, rs2_is_x0)
    };
    overlay(b, cjalr, &e_cjalr, &mut out, &mut any);
    let caddh = {
        let x = b.and2(g1, nrd0);
        b.and2(x, nrs20)
    };
    overlay(b, caddh, &e_cadd, &mut out, &mut any);

    let illegal = b.not(any);
    (out, illegal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdat_isa::rv32::{encode as e, expand_compressed};
    use pdat_netlist::Simulator;

    fn run_expander(half: u16) -> (u32, bool, bool) {
        let mut b = RtlBuilder::new("exp");
        let fetch = b.input_word("fetch", 32);
        let (out, is_c, illegal) = build_expander(&mut b, &fetch);
        b.output_word("out", &out);
        b.output_bit("is_c", is_c);
        b.output_bit("illegal", illegal);
        let nl = b.finish();
        nl.validate().unwrap();
        let mut sim = Simulator::new(&nl);
        let assigns: Vec<_> = fetch
            .bits()
            .iter()
            .enumerate()
            .map(|(i, &bt)| (bt, (half as u32) >> i & 1 == 1))
            .collect();
        sim.set_inputs(&assigns);
        let mut v = 0u32;
        for (i, &bt) in out.bits().iter().enumerate() {
            if sim.value(bt) {
                v |= 1 << i;
            }
        }
        (v, sim.value(is_c), sim.value(illegal))
    }

    #[test]
    fn matches_software_expander_on_catalog() {
        let halves: Vec<u16> = vec![
            e::c_addi(5, -3),
            e::c_addi(1, 31),
            e::c_li(10, 7),
            e::c_li(3, -32),
            e::c_mv(3, 4),
            e::c_add(3, 4),
            e::c_slli(3, 4),
            e::c_srli(9, 2),
            e::c_srai(9, 31),
            e::c_andi(9, -1),
            e::c_sub(8, 9),
            e::c_xor(8, 9),
            e::c_or(8, 9),
            e::c_and(8, 9),
            e::c_lw(8, 9, 4),
            e::c_lw(15, 10, 124),
            e::c_sw(8, 9, 64),
            e::c_lwsp(1, 8),
            e::c_lwsp(31, 252),
            e::c_swsp(1, 12),
            e::c_swsp(15, 248),
            e::c_lui(3, 1),
            e::c_lui(4, -1),
            e::c_addi16sp(-16),
            e::c_addi16sp(496),
            e::c_addi4spn(8, 4),
            e::c_addi4spn(15, 1020),
            e::c_j(-4),
            e::c_j(2046),
            e::c_jal(100),
            e::c_jal(-2048),
            e::c_beqz(8, 6),
            e::c_beqz(14, -256),
            e::c_bnez(8, -6),
        ];
        for h in halves {
            let sw = expand_compressed(h);
            let (hw, is_c, illegal) = run_expander(h);
            assert!(is_c, "{h:#06x} should be compressed");
            match sw {
                Some(expect) => {
                    assert!(!illegal, "{h:#06x} flagged illegal");
                    assert_eq!(hw, expect, "{h:#06x}: hw {hw:#010x} != sw {expect:#010x}");
                }
                None => assert!(illegal, "{h:#06x} should be illegal"),
            }
        }
    }

    #[test]
    fn passthrough_for_32bit_words() {
        let mut b = RtlBuilder::new("exp");
        let fetch = b.input_word("fetch", 32);
        let (out, is_c, _il) = build_expander(&mut b, &fetch);
        b.output_word("out", &out);
        b.output_bit("is_c", is_c);
        let nl = b.finish();
        let mut sim = Simulator::new(&nl);
        let word = e::add(1, 2, 3);
        let assigns: Vec<_> = fetch
            .bits()
            .iter()
            .enumerate()
            .map(|(i, &bt)| (bt, word >> i & 1 == 1))
            .collect();
        sim.set_inputs(&assigns);
        assert!(!sim.value(is_c));
        let mut v = 0u32;
        for (i, &bt) in out.bits().iter().enumerate() {
            if sim.value(bt) {
                v |= 1 << i;
            }
        }
        assert_eq!(v, word);
    }

    #[test]
    fn jr_and_ebreak_subencodings() {
        // c.jr x5 = 0x8282 ; c.jalr x5 = 0x9282 ; c.ebreak = 0x9002.
        let (w, _, il) = run_expander(0x8282);
        assert!(!il);
        assert_eq!(w, e::jalr(0, 5, 0));
        let (w, _, il) = run_expander(0x9282);
        assert!(!il);
        assert_eq!(w, e::jalr(1, 5, 0));
        let (w, _, il) = run_expander(0x9002);
        assert!(!il);
        assert_eq!(w, e::ebreak());
    }

    #[test]
    fn illegal_zero_halfword() {
        let (_, is_c, illegal) = run_expander(0x0000);
        assert!(is_c);
        assert!(illegal);
    }
}
