//! A RIDECORE-class core generator: 2-way superscalar, out-of-order RV32IM
//! (multiply but no divide), 6-stage, 64-entry ROB, 96 physical registers,
//! gshare + 8-entry BTB — the paper's Table II row, at the ~100k-gate
//! scale.
//!
//! Unlike the Ibex- and Cortex-M0-class generators, this design is used for
//! the paper's *scalability* experiment (Fig. 7): PDAT must analyze a
//! 100k-gate netlist and trim decode-dependent logic while the large
//! out-of-order structures (physical register file, ROB, predictor tables)
//! stay — exactly the "muted relative, similar absolute savings" result.
//! The pipeline is fully elaborated and connected (every structure is
//! driven by real decode/rename/issue/commit logic), but it is evaluated
//! structurally rather than by running programs; see DESIGN.md.

use pdat_isa::rv32::RvInstr;
use pdat_netlist::{NetId, Netlist};
use pdat_rtl::{RtlBuilder, Word};

/// Handles to the generated RIDECORE-class netlist.
#[derive(Debug, Clone)]
pub struct RideCore {
    /// The gate-level netlist.
    pub netlist: Netlist,
    /// The 2-wide instruction fetch port (two 32-bit words).
    pub instr_in: [Vec<NetId>; 2],
    /// Load-data port.
    pub data_rdata_in: Vec<NetId>,
    /// Fetch address outputs.
    pub instr_addr_out: Vec<NetId>,
}

const NUM_PHYS: usize = 96;
const PHYS_BITS: usize = 7;
const ROB_ENTRIES: usize = 64;
const ROB_BITS: usize = 6;
const IQ_ENTRIES: usize = 8;
const PHT_ENTRIES: usize = 1024;
const BTB_ENTRIES: usize = 8;

/// Generate the core.
pub fn build_ridecore() -> RideCore {
    let mut b = RtlBuilder::new("ridecore_like");

    let instr0 = b.input_word("instr0_i", 32);
    let instr1 = b.input_word("instr1_i", 32);
    let data_rdata = b.input_word("data_rdata_i", 32);
    let zero = b.zero();

    let fwd_w = |b: &mut RtlBuilder, name: &str, w: usize| -> Word {
        (0..w).map(|i| b.raw_net(&format!("{name}{i}"))).collect()
    };
    let fwd = |b: &mut RtlBuilder, name: &str| -> NetId { b.raw_net(name) };

    // ---- fetch with gshare + BTB ----
    let redirect_w = fwd(&mut b, "redirect_w");
    let target_w = fwd_w(&mut b, "target_w", 32);
    let pc_fb = fwd_w(&mut b, "pc_fb", 32);
    let eight = b.constant(8, 32);
    let pc_plus = b.add(&pc_fb, &eight);

    // Global history register (10 bits) and gshare PHT.
    let ghist_fb = fwd_w(&mut b, "ghist_fb", 10);
    let idx = {
        let pcw = pc_fb.slice(2, 12);
        b.xor_word(&pcw, &ghist_fb)
    };
    // PHT: 1024 x 2-bit counters. Update port wires come from commit.
    let pht_we = fwd(&mut b, "pht_we_w");
    let pht_widx = fwd_w(&mut b, "pht_widx_w", 10);
    let pht_wval = fwd_w(&mut b, "pht_wval_w", 2);
    let mut pht: Vec<Word> = Vec::with_capacity(PHT_ENTRIES);
    for e in 0..PHT_ENTRIES {
        let hit = b.decode_index(&pht_widx, e);
        let we = b.and2(hit, pht_we);
        pht.push(b.reg_en(&pht_wval, we, 0b01, &format!("pht{e}")));
    }
    let pht_rd = b.regfile_read(&pht, &idx);
    let predict_taken = pht_rd.bit(1);

    // BTB: 8 entries of {valid, tag[20], target[30]}.
    let btb_we = fwd(&mut b, "btb_we_w");
    let btb_widx = fwd_w(&mut b, "btb_widx_w", 3);
    let btb_wtag = fwd_w(&mut b, "btb_wtag_w", 20);
    let btb_wtgt = fwd_w(&mut b, "btb_wtgt_w", 30);
    let btb_ridx = pc_fb.slice(3, 6);
    let btb_rtag = pc_fb.slice(6, 26);
    let mut btb_hit = zero;
    let mut btb_target = b.constant(0, 30);
    for e in 0..BTB_ENTRIES {
        let sel_w = b.decode_index(&btb_widx, e);
        let we = b.and2(sel_w, btb_we);
        let tag = b.reg_en(&btb_wtag, we, 0, &format!("btb_tag{e}"));
        let tgt = b.reg_en(&btb_wtgt, we, 0, &format!("btb_tgt{e}"));
        let one_w = Word::from_bits(vec![b.one()]);
        let valid = b.reg_en(&one_w, we, 0, &format!("btb_v{e}")).bit(0);
        let sel_r = b.decode_index(&btb_ridx, e);
        let tag_eq = b.eq(&tag, &btb_rtag);
        let hit = {
            let x = b.and2(sel_r, tag_eq);
            b.and2(x, valid)
        };
        btb_hit = b.or2(btb_hit, hit);
        btb_target = b.mux_word(hit, &tgt, &btb_target);
    }
    let btb_tgt32: Word = {
        let lo = b.constant(0, 2);
        lo.concat(&btb_target)
    };
    let use_pred = b.and2(predict_taken, btb_hit);
    let pred_pc = b.mux_word(use_pred, &btb_tgt32, &pc_plus);
    let next_pc = b.mux_word(redirect_w, &target_w, &pred_pc);
    let pc = b.reg(&next_pc, 0, "pc");
    b.bind(&pc_fb, &pc);
    b.output_word("instr_addr_o", &pc);

    // Fetch registers (2-wide).
    let f_instr0 = b.reg(&instr0, 0, "f_instr0");
    let f_instr1 = b.reg(&instr1, 0, "f_instr1");
    let f_pc = b.reg(&pc, 0, "f_pc");

    // ---- decode (2-way) ----
    // RIDECORE implements RV32I + the multiply half of M (no divide).
    let decode_way = |b: &mut RtlBuilder, instr: &Word| -> DecodedWay {
        use RvInstr::*;
        let mut hit = std::collections::HashMap::new();
        for f in RvInstr::ALL {
            if f.is_compressed() {
                continue;
            }
            if matches!(f, Div | Divu | Rem | Remu) {
                continue; // not implemented by RIDECORE
            }
            let p = f.pattern();
            hit.insert(f, b.match_pattern(instr, p.mask as u64, p.value as u64));
        }
        let g = |b: &mut RtlBuilder, fs: &[RvInstr], hit: &std::collections::HashMap<RvInstr, NetId>| {
            let bits: Vec<NetId> = fs.iter().map(|f| hit[f]).collect();
            b.or_many(&bits)
        };
        let is_branch = g(b, &[Beq, Bne, Blt, Bge, Bltu, Bgeu], &hit);
        let is_jump = g(b, &[Jal, Jalr], &hit);
        let is_load = g(b, &[Lb, Lh, Lw, Lbu, Lhu], &hit);
        let is_store = g(b, &[Sb, Sh, Sw], &hit);
        let is_mul = g(b, &[Mul, Mulh, Mulhsu, Mulhu], &hit);
        let _ = is_mul;
        let is_alu = g(
            b,
            &[
                Addi, Slti, Sltiu, Xori, Ori, Andi, Slli, Srli, Srai, Add, Sub, Sll, Slt,
                Sltu, Xor, Srl, Sra, Or, And, Lui, Auipc,
            ],
            &hit,
        );
        let writes = {
            let x = b.or2(is_alu, is_load);
            let x = b.or2(x, is_mul);
            b.or2(x, is_jump)
        };
        let uses_rs2 = {
            let r = g(
                b,
                &[Add, Sub, Sll, Slt, Sltu, Xor, Srl, Sra, Or, And, Mul, Mulh, Mulhsu, Mulhu],
                &hit,
            );
            let x = b.or2(r, is_branch);
            b.or2(x, is_store)
        };
        // 4-bit op select for the functional units.
        let op: Word = {
            let o0 = g(b, &[Sub, Slt, Slti, Beq, Bne, Blt, Bge, Bltu, Bgeu], &hit);
            let o1 = g(b, &[Xor, Xori, Or, Ori, And, Andi], &hit);
            let o2 = g(b, &[Sll, Slli, Srl, Srli, Sra, Srai], &hit);
            let o3 = is_mul;
            [o0, o1, o2, o3].into_iter().collect()
        };
        DecodedWay {
            rd: instr.slice(7, 12),
            rs1: instr.slice(15, 20),
            rs2: instr.slice(20, 25),
            imm: {
                let lo = instr.slice(20, 32);
                b.extend(&lo, 32, true)
            },
            writes,
            uses_rs2,
            is_branch,
            is_load,
            is_store,
            op,
        }
    };
    let d0 = decode_way(&mut b, &f_instr0);
    let d1 = decode_way(&mut b, &f_instr1);

    // ---- rename ----
    // Speculative RAT: 32 x PHYS_BITS, two write ports.
    let rat_we0 = d0.writes;
    let rat_we1 = d1.writes;
    // Free-list as a wrap-around counter (simplified circular allocation).
    let alloc_fb = fwd_w(&mut b, "alloc_fb", PHYS_BITS);
    let one_p = b.constant(1, PHYS_BITS);
    let two_p = b.constant(2, PHYS_BITS);
    let alloc0 = alloc_fb.clone();
    let alloc1 = b.add(&alloc_fb, &one_p);
    let alloc_next = b.add(&alloc_fb, &two_p);
    // Wrap at NUM_PHYS (96): if next >= 96, subtract 96.
    let npw = b.constant(NUM_PHYS as u64, PHYS_BITS);
    let (wrapped, no_borrow) = b.sub_with_borrow(&alloc_next, &npw);
    let alloc_wrapped = b.mux_word(no_borrow, &wrapped, &alloc_next);
    let alloc = b.reg(&alloc_wrapped, 32, "alloc_ptr");
    b.bind(&alloc_fb, &alloc);

    let mut rat: Vec<Word> = Vec::with_capacity(32);
    for r in 0..32 {
        let h0 = b.decode_index(&d0.rd, r);
        let we0 = b.and2(h0, rat_we0);
        let h1 = b.decode_index(&d1.rd, r);
        let we1 = b.and2(h1, rat_we1);
        // Way 1 wins on same-register conflicts (younger instruction).
        let dnew = b.mux_word(we1, &alloc1, &alloc0);
        let wen = b.or2(we0, we1);
        let init = r as u64; // identity mapping at reset
        rat.push(b.reg_en(&dnew, wen, init, &format!("rat{r}")));
    }
    let src0a = b.regfile_read(&rat, &d0.rs1);
    let src0b = b.regfile_read(&rat, &d0.rs2);
    let src1a = b.regfile_read(&rat, &d1.rs1);
    let src1b = b.regfile_read(&rat, &d1.rs2);

    // ---- ROB ----
    // Each entry: {valid, done, dest_arch[5], dest_phys[7]}.
    let rob_tail_fb = fwd_w(&mut b, "rob_tail_fb", ROB_BITS);
    let rob_head_fb = fwd_w(&mut b, "rob_head_fb", ROB_BITS);
    let one_r = b.constant(1, ROB_BITS);
    let two_r = b.constant(2, ROB_BITS);
    let tail1 = b.add(&rob_tail_fb, &one_r);
    let tail_next = b.add(&rob_tail_fb, &two_r);
    let rob_tail = b.reg(&tail_next, 0, "rob_tail");
    b.bind(&rob_tail_fb, &rob_tail);
    // Execute-stage completion wires (bound after the FUs).
    let done_we0 = fwd(&mut b, "done_we0_w");
    let done_idx0 = fwd_w(&mut b, "done_idx0_w", ROB_BITS);
    let done_we1 = fwd(&mut b, "done_we1_w");
    let done_idx1 = fwd_w(&mut b, "done_idx1_w", ROB_BITS);

    let mut rob_valid: Vec<NetId> = Vec::with_capacity(ROB_ENTRIES);
    let mut rob_done: Vec<NetId> = Vec::with_capacity(ROB_ENTRIES);
    let mut rob_meta: Vec<Word> = Vec::with_capacity(ROB_ENTRIES);
    let meta0 = d0.rd.concat(&alloc0);
    let meta1 = d1.rd.concat(&alloc1);
    for e in 0..ROB_ENTRIES {
        let at0 = b.decode_index(&rob_tail_fb, e);
        let we0 = b.and2(at0, d0.writes);
        let at1 = b.decode_index(&tail1, e);
        let we1 = b.and2(at1, d1.writes);
        let alloc_here = b.or2(at0, at1);
        let meta = {
            let v = b.mux_word(at1, &meta1, &meta0);
            v
        };
        let mwen = b.or2(we0, we1);
        rob_meta.push(b.reg_en(&meta, mwen, 0, &format!("rob_meta{e}")));
        // valid: set on allocate, cleared on commit.
        let commit_here = b.decode_index(&rob_head_fb, e);
        let v_fb = fwd(&mut b, &format!("rob_v_fb{e}"));
        let set = alloc_here;
        let keep = {
            let nc = b.not(commit_here);
            b.and2(v_fb, nc)
        };
        let v_next = b.or2(set, keep);
        let v = b.dff(v_next, false, &format!("rob_v{e}"));
        b.bind_bit(v_fb, v);
        rob_valid.push(v);
        // done: set by completion, cleared on allocate.
        let d_fb = fwd(&mut b, &format!("rob_d_fb{e}"));
        let c0 = {
            let h = b.decode_index(&done_idx0, e);
            b.and2(h, done_we0)
        };
        let c1 = {
            let h = b.decode_index(&done_idx1, e);
            b.and2(h, done_we1)
        };
        let setd = b.or2(c0, c1);
        let keepd = {
            let na = b.not(alloc_here);
            b.and2(d_fb, na)
        };
        let d_next = b.or2(setd, keepd);
        let d = b.dff(d_next, false, &format!("rob_d{e}"));
        b.bind_bit(d_fb, d);
        rob_done.push(d);
    }
    // Commit: advance head when the head entry is valid & done.
    let head_valid = {
        let vals: Vec<Word> = rob_valid.iter().map(|&v| Word::from_bits(vec![v])).collect();
        b.regfile_read(&vals, &rob_head_fb).bit(0)
    };
    let head_done = {
        let vals: Vec<Word> = rob_done.iter().map(|&v| Word::from_bits(vec![v])).collect();
        b.regfile_read(&vals, &rob_head_fb).bit(0)
    };
    let commit = b.and2(head_valid, head_done);
    let head1 = b.add(&rob_head_fb, &one_r);
    let head_next = b.mux_word(commit, &head1, &rob_head_fb);
    let rob_head = b.reg(&head_next, 0, "rob_head");
    b.bind(&rob_head_fb, &rob_head);

    // ---- issue queue ----
    // Entries: {valid, op[4], src_a[7], src_b[7], dest[7], robidx[6],
    //           uses_b, is_branch}.
    let iq_alloc_ptr_fb = fwd_w(&mut b, "iq_ptr_fb", 3);
    let one_q = b.constant(1, 3);
    let two_q = b.constant(2, 3);
    let q1 = b.add(&iq_alloc_ptr_fb, &one_q);
    let q_next = b.add(&iq_alloc_ptr_fb, &two_q);
    let iq_ptr = b.reg(&q_next, 0, "iq_ptr");
    b.bind(&iq_alloc_ptr_fb, &iq_ptr);

    let grant0 = fwd_w(&mut b, "grant0_w", IQ_ENTRIES);
    let grant1 = fwd_w(&mut b, "grant1_w", IQ_ENTRIES);

    let payload0: Word = d0
        .op
        .concat(&src0a)
        .concat(&src0b)
        .concat(&alloc0)
        .concat(&rob_tail_fb)
        .concat(&d0.imm)
        .concat(&Word::from_bits(vec![d0.uses_rs2, d0.is_branch, d0.is_load]));
    let payload1: Word = d1
        .op
        .concat(&src1a)
        .concat(&src1b)
        .concat(&alloc1)
        .concat(&tail1)
        .concat(&d1.imm)
        .concat(&Word::from_bits(vec![d1.uses_rs2, d1.is_branch, d1.is_load]));
    let payload_w = payload0.width();

    let mut iq_valid: Vec<NetId> = Vec::with_capacity(IQ_ENTRIES);
    let mut iq_payload: Vec<Word> = Vec::with_capacity(IQ_ENTRIES);
    for e in 0..IQ_ENTRIES {
        let at0 = b.decode_index(&iq_alloc_ptr_fb, e);
        let at1 = b.decode_index(&q1, e);
        let pw = b.mux_word(at1, &payload1, &payload0);
        let wen = b.or2(at0, at1);
        iq_payload.push(b.reg_en(&pw, wen, 0, &format!("iq_p{e}")));
        let v_fb = fwd(&mut b, &format!("iq_v_fb{e}"));
        let deq = b.or2(grant0.bit(e), grant1.bit(e));
        let keep = {
            let nd = b.not(deq);
            b.and2(v_fb, nd)
        };
        let v_next = b.or2(wen, keep);
        let v = b.dff(v_next, false, &format!("iq_v{e}"));
        b.bind_bit(v_fb, v);
        iq_valid.push(v);
    }
    // Select the two lowest-index valid entries.
    let mut g0: Vec<NetId> = Vec::with_capacity(IQ_ENTRIES);
    let mut taken_before = zero;
    for e in 0..IQ_ENTRIES {
        let nt = b.not(taken_before);
        let g = b.and2(iq_valid[e], nt);
        g0.push(g);
        taken_before = b.or2(taken_before, iq_valid[e]);
    }
    let mut g1: Vec<NetId> = Vec::with_capacity(IQ_ENTRIES);
    let mut count_one = zero;
    for e in 0..IQ_ENTRIES {
        // grant1: valid, not grant0, and exactly one older grant exists.
        let ng0 = b.not(g0[e]);
        let elig = b.and2(iq_valid[e], ng0);
        let g = b.and2(elig, count_one);
        let ng = b.not(g);
        // first eligible after grant0
        let ncount = b.not(count_one);
        let g_first = b.and2(elig, ncount);
        let _ = ng;
        // count_one becomes true once grant0 has been passed.
        count_one = b.or2(count_one, g0[e]);
        g1.push(b.or2(g, {
            let never = zero;
            let _ = never;
            g_first
        }));
    }
    // Keep only the first grant1 (priority).
    let mut g1_final: Vec<NetId> = Vec::with_capacity(IQ_ENTRIES);
    let mut got1 = zero;
    for &g in g1.iter().take(IQ_ENTRIES) {
        let ng = b.not(got1);
        let keep = b.and2(g, ng);
        // It must also not be a grant0 winner.
        g1_final.push(keep);
        got1 = b.or2(got1, keep);
    }
    for e in 0..IQ_ENTRIES {
        b.bind_bit(grant0.bit(e), g0[e]);
        b.bind_bit(grant1.bit(e), g1_final[e]);
    }
    // Muxed-out payloads.
    let sel_payload = |b: &mut RtlBuilder, grants: &[NetId], payloads: &[Word]| -> Word {
        let mut acc = b.constant(0, payload_w);
        for (e, p) in payloads.iter().enumerate() {
            acc = b.mux_word(grants[e], p, &acc);
        }
        acc
    };
    let issue0 = sel_payload(&mut b, &g0, &iq_payload);
    let issue1 = sel_payload(&mut b, &g1_final, &iq_payload);

    // ---- physical register file (96 x 32, 4R 2W) ----
    let prf_we0 = fwd(&mut b, "prf_we0_w");
    let prf_wa0 = fwd_w(&mut b, "prf_wa0_w", PHYS_BITS);
    let prf_wd0 = fwd_w(&mut b, "prf_wd0_w", 32);
    let prf_we1 = fwd(&mut b, "prf_we1_w");
    let prf_wa1 = fwd_w(&mut b, "prf_wa1_w", PHYS_BITS);
    let prf_wd1 = fwd_w(&mut b, "prf_wd1_w", 32);
    let mut prf: Vec<Word> = Vec::with_capacity(NUM_PHYS);
    for r in 0..NUM_PHYS {
        let h0 = b.decode_index(&prf_wa0, r);
        let we0 = b.and2(h0, prf_we0);
        let h1 = b.decode_index(&prf_wa1, r);
        let we1 = b.and2(h1, prf_we1);
        let d = b.mux_word(we1, &prf_wd1, &prf_wd0);
        let wen = b.or2(we0, we1);
        prf.push(b.reg_en(&d, wen, 0, &format!("prf{r}")));
    }
    let iss0_sa = issue0.slice(4, 4 + PHYS_BITS);
    let iss0_sb = issue0.slice(11, 11 + PHYS_BITS);
    let iss0_dst = issue0.slice(18, 18 + PHYS_BITS);
    let iss0_rob = issue0.slice(25, 25 + ROB_BITS);
    let iss0_imm = issue0.slice(31, 63);
    let iss0_uses_b = issue0.bit(63);
    let iss0_op = issue0.slice(0, 4);
    let iss1_sa = issue1.slice(4, 4 + PHYS_BITS);
    let iss1_sb = issue1.slice(11, 11 + PHYS_BITS);
    let iss1_dst = issue1.slice(18, 18 + PHYS_BITS);
    let iss1_rob = issue1.slice(25, 25 + ROB_BITS);
    let iss1_imm = issue1.slice(31, 63);
    let iss1_uses_b = issue1.bit(63);
    let iss1_op = issue1.slice(0, 4);

    let opa0 = b.regfile_read(&prf, &iss0_sa);
    let opb0_reg = b.regfile_read(&prf, &iss0_sb);
    let opa1 = b.regfile_read(&prf, &iss1_sa);
    let opb1_reg = b.regfile_read(&prf, &iss1_sb);
    // Operand B: physical register for R-type/branch/store, immediate
    // otherwise — this is what carries program data into the PRF.
    let opb0 = b.mux_word(iss0_uses_b, &opb0_reg, &iss0_imm);
    let opb1 = b.mux_word(iss1_uses_b, &opb1_reg, &iss1_imm);

    // ---- functional units ----
    let alu = |b: &mut RtlBuilder, a: &Word, bb: &Word, op: &Word| -> Word {
        let sum = b.add(a, bb);
        let diff = b.sub(a, bb);
        let xo = b.xor_word(a, bb);
        let an = b.and_word(a, bb);
        let orr = b.or_word(a, bb);
        let sh = bb.slice(0, 5);
        let shl = b.shl(a, &sh);
        let shr = b.shr(a, &sh);
        let mut r = b.mux_word(op.bit(0), &diff, &sum);
        let logic = b.mux_word(op.bit(0), &an, &xo);
        let logic = b.mux_word(a.bit(0), &orr, &logic); // data-dependent mix
        r = b.mux_word(op.bit(1), &logic, &r);
        let shifted = b.mux_word(op.bit(0), &shr, &shl);
        r = b.mux_word(op.bit(2), &shifted, &r);
        r
    };
    let alu0_r = alu(&mut b, &opa0, &opb0, &iss0_op);
    let alu1_r = alu(&mut b, &opa1, &opb1, &iss1_op);
    // Array multiplier on port 0 (RIDECORE's multiply pipeline).
    let mul_full = b.mul_full(&opa0, &opb0);
    let mul_lo = mul_full.slice(0, 32);
    let iss0_is_load = issue0.bit(payload_w - 1);
    let iss1_is_load = issue1.bit(payload_w - 1);
    let r0 = {
        let x = b.mux_word(iss0_op.bit(3), &mul_lo, &alu0_r);
        b.mux_word(iss0_is_load, &data_rdata, &x)
    };
    let r1 = b.mux_word(iss1_is_load, &data_rdata, &alu1_r);

    let any_g0 = b.or_many(&g0);
    let any_g1 = b.or_many(&g1_final);
    b.bind_bit(prf_we0, any_g0);
    b.bind_bit(prf_we1, any_g1);
    b.bind(&prf_wa0, &iss0_dst);
    b.bind(&prf_wa1, &iss1_dst);
    b.bind(&prf_wd0, &r0);
    b.bind(&prf_wd1, &r1);
    b.bind_bit(done_we0, any_g0);
    b.bind_bit(done_we1, any_g1);
    b.bind(&done_idx0, &iss0_rob);
    b.bind(&done_idx1, &iss1_rob);

    // ---- branch resolution & predictor update ----
    let is_br0 = issue0.bit(payload_w - 2);
    let br_taken = {
        let z = b.is_zero(&alu0_r);
        let x = b.and2(is_br0, z);
        b.and2(x, any_g0)
    };
    let br_target = b.add(&opa0, &opb0);
    b.bind_bit(redirect_w, br_taken);
    b.bind(&target_w, &br_target);
    // Global history shifts in resolved branch outcomes.
    let ghist_next: Word = {
        let mut bits = vec![br_taken];
        bits.extend_from_slice(&ghist_fb.bits()[..9]);
        Word::from_bits(bits)
    };
    let ghist = b.reg(&ghist_next, 0, "ghist");
    b.bind(&ghist_fb, &ghist);
    // PHT update: saturating counter.
    let upd_idx = {
        let pcw = f_pc.slice(2, 12);
        b.xor_word(&pcw, &ghist_fb)
    };
    let old = b.regfile_read(&pht, &upd_idx);
    let one2 = b.constant(1, 2);
    let inc = b.add(&old, &one2);
    let dec = b.sub(&old, &one2);
    let at_max = b.match_pattern(&old, 0b11, 0b11);
    let at_min = b.match_pattern(&old, 0b11, 0b00);
    let up = {
        let nm = b.not(at_max);
        b.mux_word(nm, &inc, &old)
    };
    let down = {
        let nm = b.not(at_min);
        b.mux_word(nm, &dec, &old)
    };
    let newval = b.mux_word(br_taken, &up, &down);
    b.bind(&pht_widx, &upd_idx);
    b.bind(&pht_wval, &newval);
    b.bind_bit(pht_we, is_br0);
    // BTB update on taken branches.
    b.bind_bit(btb_we, br_taken);
    let btb_widx_v = f_pc.slice(3, 6);
    b.bind(&btb_widx, &btb_widx_v);
    let btb_wtag_v = f_pc.slice(6, 26);
    b.bind(&btb_wtag, &btb_wtag_v);
    let btb_wtgt_v = br_target.slice(2, 32);
    b.bind(&btb_wtgt, &btb_wtgt_v);

    // ---- commit-side observability ----
    let head_meta = b.regfile_read(&rob_meta, &rob_head_fb);
    b.output_word("commit_meta_o", &head_meta);
    b.output_bit("commit_o", commit);
    b.output_word("rob_head_o", &rob_head);
    b.output_word("rob_tail_o", &rob_tail);
    // Expose a PRF read for observability (committed dest register).
    let head_phys = head_meta.slice(5, 5 + PHYS_BITS);
    let commit_val = b.regfile_read(&prf, &head_phys);
    b.output_word("commit_value_o", &commit_val);
    // Memory interface stubs driven by the store path.
    let st_addr = b.add(&opa1, &opb1);
    b.output_word("data_addr_o", &st_addr);
    let st_en = {
        let x = b.or2(d0.is_store, d1.is_store);
        let y = b.or2(d0.is_load, d1.is_load);
        b.or2(x, y)
    };
    b.output_bit("data_req_o", st_en);
    // High product bits are observable only when a multiply actually
    // issues — otherwise the array multiplier would be pinned live by the
    // port alone.
    let mul_hi = mul_full.slice(32, 64);
    let mul_issued = {
        let op3 = iss0_op.bit(3);
        b.and2(op3, any_g0)
    };
    let mul_hi_gated: Word = mul_hi
        .bits()
        .iter()
        .map(|&x| b.and2(x, mul_issued))
        .collect();
    b.output_word("mul_hi_o", &mul_hi_gated);
    let imm_obs = b.xor_word(&d0.imm, &d1.imm);
    b.output_word("imm_obs_o", &imm_obs);

    let core = RideCore {
        instr_in: [instr0.bits().to_vec(), instr1.bits().to_vec()],
        data_rdata_in: data_rdata.bits().to_vec(),
        instr_addr_out: pc.bits().to_vec(),
        netlist: b.finish(),
    };
    core
}

struct DecodedWay {
    rd: Word,
    rs1: Word,
    rs2: Word,
    imm: Word,
    writes: NetId,
    uses_rs2: NetId,
    is_branch: NetId,
    is_load: NetId,
    is_store: NetId,
    op: Word,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ridecore_scale_and_validity() {
        let core = build_ridecore();
        core.netlist.validate().expect("ridecore netlist valid");
        let stats = core.netlist.stats();
        assert!(
            stats.gate_count > 60_000,
            "expected ~100k-gate scale, got {}",
            stats.gate_count
        );
        assert!(stats.dff_count > 5_000, "OoO state: got {} DFFs", stats.dff_count);
    }

    #[test]
    fn ridecore_simulates_without_x() {
        // The netlist must simulate cleanly (no panics, settles each cycle).
        let core = build_ridecore();
        let mut sim = pdat_netlist::Simulator::new(&core.netlist);
        // Feed a couple of NOP-ish words and clock it.
        let word = pdat_isa::rv32::addi(0, 0, 0);
        let assigns: Vec<_> = core.instr_in[0]
            .iter()
            .chain(core.instr_in[1].iter())
            .enumerate()
            .map(|(i, &n)| (n, word >> (i % 32) & 1 == 1))
            .collect();
        for _ in 0..8 {
            sim.set_inputs(&assigns);
            sim.step();
        }
    }
}
