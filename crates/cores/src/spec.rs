//! Static core descriptors — the paper's Table II.

use std::fmt;

/// Architecture/microarchitecture features of one core (Table II row).
#[derive(Debug, Clone, PartialEq)]
pub struct CoreSpec {
    /// Core name.
    pub name: &'static str,
    /// ISA string.
    pub isa: &'static str,
    /// Pipeline stages.
    pub stages: u32,
    /// Issue width.
    pub issue_width: u32,
    /// Reorder-buffer entries (`None` for in-order cores).
    pub rob_size: Option<u32>,
    /// Branch prediction scheme.
    pub branch_prediction: &'static str,
    /// BTB entries (`None` when there is no BTB).
    pub btb_entries: Option<u32>,
    /// Physical (or architectural) register count.
    pub physical_registers: u32,
    /// Approximate gate count of the paper's design.
    pub paper_gate_count: u32,
}

impl fmt::Display for CoreSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} {:<9} stages={} IW={} ROB={} BP={} BTB={} regs={} ~{} gates",
            self.name,
            self.isa,
            self.stages,
            self.issue_width,
            self.rob_size.map_or("N/A".into(), |v| v.to_string()),
            self.branch_prediction,
            self.btb_entries.map_or("N/A".into(), |v| v.to_string()),
            self.physical_registers,
            self.paper_gate_count,
        )
    }
}

/// The three evaluated cores (paper Table II).
pub fn core_specs() -> [CoreSpec; 3] {
    [
        CoreSpec {
            name: "Ibex",
            isa: "RV32imcz",
            stages: 2,
            issue_width: 1,
            rob_size: None,
            branch_prediction: "SNT",
            btb_entries: None,
            physical_registers: 32,
            paper_gate_count: 10_000,
        },
        CoreSpec {
            name: "RIDECORE",
            isa: "RV32im",
            stages: 6,
            issue_width: 2,
            rob_size: Some(64),
            branch_prediction: "G-Share",
            btb_entries: Some(8),
            physical_registers: 96,
            paper_gate_count: 100_000,
        },
        CoreSpec {
            name: "Cortex M0",
            isa: "ARMv6-m",
            stages: 3,
            issue_width: 1,
            rob_size: None,
            branch_prediction: "SNT",
            btb_entries: None,
            physical_registers: 16,
            paper_gate_count: 10_000,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper() {
        let specs = core_specs();
        assert_eq!(specs[0].stages, 2);
        assert_eq!(specs[1].rob_size, Some(64));
        assert_eq!(specs[1].physical_registers, 96);
        assert_eq!(specs[2].isa, "ARMv6-m");
        for s in &specs {
            assert!(!s.to_string().is_empty());
        }
    }
}
