#!/bin/sh
# Fast smoke target (no cargo-bench, no criterion): builds the throughput
# harness in release and runs a single-rep falsification benchmark,
# asserting at runtime that all three engines (seed-style, chunked
# reference, wide parallel at 1/2/4 threads) produce identical survivor
# sets. Writes target/BENCH_SMOKE.json; the checked-in BENCH_PR1.json is
# regenerated with the same binary without --smoke.
set -eu
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo build --release -q -p pdat-bench --bin falsify_throughput
./target/release/falsify_throughput --smoke target/BENCH_SMOKE.json
