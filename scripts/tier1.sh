#!/bin/sh
# Tier-1 gate: release build + full test suite, fully offline.
#
# The workspace has no registry dependencies — rand/proptest/criterion are
# vendored shims under vendor/ (see vendor/README.md) — so the build must
# succeed with an empty cargo registry. CARGO_NET_OFFLINE=true enforces
# that invariant: if someone adds a registry dep, this script fails fast
# instead of silently reaching for the network. Do not add external crates;
# vendor a shim or gate the feature instead.
set -eu
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

sh scripts/lint_panics.sh

# --workspace matters: the root is itself a package, so a bare
# `cargo build` would skip pdat-bench and the smoke gates below would
# silently run stale binaries from an earlier build.
cargo build --release --workspace
cargo test -q --workspace

# Robustness gate: sweep seeded fault schedules through the full pipeline
# and check the graceful-degradation contract (no aborts, proved set
# bounded by the fault-free oracle).
./target/release/fault_smoke 12

# Prover gate: governed sharded prover (2 threads, one candidate per
# shard) on the keyed design must reproduce the golden proved list with
# no degradation events — once through the default cone-of-influence +
# CNF-preprocessing encoding and once through the eager full-frame
# encoding, so the two paths can never drift apart.
./target/release/prove_smoke

# Proof-cache gate: miss, exact-hit, lattice-hit (warm-started Houdini),
# and the save/load round-trip on a small instruction-port design —
# every cached answer must be bit-identical to a cold run.
./target/release/cache_smoke

# Service gate: boot the supervised service, push ~50 requests through it
# across fault-armed rounds (worker panics, deadline fuses, interrupted
# checkpoints), and check that every reply is oracle-exact or a typed
# error and the cache snapshot on disk is never corrupted.
./target/release/serve_smoke
