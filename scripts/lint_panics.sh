#!/bin/sh
# Grep-gate for panics in input-facing code.
#
# The netlist parser and validator are the crate surfaces that consume
# untrusted text, so they must be total: every failure is a structured
# error, never a panic. The proof-cache store and its persistence layer
# consume untrusted cache files and must degrade to misses, never abort.
# CNF preprocessing rewrites the clause database in place under a frozen-
# variable contract; a panic there would poison a prover shard, so its
# failure mode must also stay structured. The service crate is the
# long-running surface: an organic panic there takes down a worker or
# wedges the queue, so every lock acquisition and reply send must stay
# structured (injected test faults use `std::panic::panic_any`, which
# this lint deliberately does not match). This lint strips `#[cfg(test)]`
# modules (tests are free to unwrap) and rejects any `.unwrap()`,
# `.expect(`, `panic!`, or `unreachable!` left in the shipped code paths
# of those files.
set -eu
cd "$(dirname "$0")/.."

FILES="crates/netlist/src/format.rs crates/netlist/src/validate.rs \
crates/cache/src/io.rs crates/cache/src/cache.rs \
crates/sat/src/preprocess.rs \
crates/serve/src/queue.rs crates/serve/src/request.rs crates/serve/src/service.rs"

status=0
for f in $FILES; do
    # Drop everything from the `#[cfg(test)]` marker to end of file (the
    # test module is always last in these files by convention).
    stripped=$(sed '/#\[cfg(test)\]/,$d' "$f")
    hits=$(printf '%s\n' "$stripped" \
        | grep -nE '\.unwrap\(\)|\.expect\(|panic!|unreachable!' \
        | grep -vE '^\s*[0-9]+:\s*//' || true)
    if [ -n "$hits" ]; then
        echo "lint_panics: $f has panic sites in non-test code:" >&2
        printf '%s\n' "$hits" >&2
        status=1
    fi
done

if [ "$status" -eq 0 ]; then
    echo "lint_panics: OK ($FILES)"
fi
exit "$status"
