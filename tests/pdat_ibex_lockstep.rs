//! End-to-end soundness: a PDAT-transformed Ibex-class core must execute
//! every program from the reduced ISA *identically* to the original core.
//!
//! This is the paper's central correctness claim ("the resulting design can
//! support arbitrary applications that use the reduced ISA") checked at the
//! gate level: we transform the core for a subset, run subset programs on
//! the original and the transformed netlists in lockstep, and compare
//! retire streams, register files, and data memory.

use pdat_repro::cores::{build_ibex, rebind_ibex, CoreHarness, IbexCore};
use pdat_repro::isa::rv32::{encode as e, Assembler};
use pdat_repro::isa::RvSubset;
use pdat_repro::{run_pdat, ConstraintMode, Environment, PdatConfig};

fn fast_config() -> PdatConfig {
    PdatConfig {
        sim_cycles: 192,
        conflict_budget: Some(60_000),
        max_iterations: 2_000,
        seed: 0x51DE,
        ..Default::default()
    }
}

fn transform(core: &IbexCore, subset: &RvSubset) -> IbexCore {
    let res = run_pdat(
        &core.netlist,
        &Environment::Rv {
            subset,
            ports: vec![core.cut_fetch.clone()],
            mode: ConstraintMode::CutpointBased,
        },
        &fast_config(),
    ).expect("pdat run");
    assert!(
        res.optimized.gate_count < res.baseline.gate_count,
        "expected a reduction for {}",
        subset.name
    );
    rebind_ibex(res.netlist)
}

/// Run `program` on both cores and compare architectural effects.
fn lockstep(original: &IbexCore, reduced: &IbexCore, program: &[u8], retires: usize) {
    let mut h1 = CoreHarness::new(original, program, 4096);
    let mut h2 = CoreHarness::new(reduced, program, 4096);
    let n1 = h1.run_until_retires(retires, 20_000);
    let n2 = h2.run_until_retires(retires, 20_000);
    assert_eq!(n1, retires, "original stalled");
    assert_eq!(n2, retires, "reduced stalled");
    assert_eq!(h1.retires, h2.retires, "retire (pc, cycle) streams diverge");
    for r in 1..32 {
        assert_eq!(h1.reg(r), h2.reg(r), "x{r} diverges");
    }
    assert_eq!(h1.dmem, h2.dmem, "data memory diverges");
}

#[test]
fn rv32i_subset_core_runs_rv32i_programs_identically() {
    let core = build_ibex();
    let reduced = transform(&core, &RvSubset::rv32i());

    // A representative RV32I-only program: arithmetic, branches, memory.
    let mut a = Assembler::new();
    let done = a.new_label();
    a.emit(e::addi(1, 0, 10)); // n
    a.emit(e::addi(2, 0, 0)); // sum
    a.emit(e::addi(3, 0, 512)); // ptr
    let top = a.here();
    a.beq(1, 0, done);
    a.emit(e::add(2, 2, 1));
    a.emit(e::sw(2, 3, 0));
    a.emit(e::lw(4, 3, 0));
    a.emit(e::xor(5, 4, 1));
    a.emit(e::slli(6, 1, 2));
    a.emit(e::sltu(7, 5, 6));
    a.emit(e::addi(1, 1, -1));
    a.jump_back(top);
    a.bind(done);
    a.emit(e::lui(8, 0xABCDE));
    a.emit(e::srai(9, 8, 9));
    let program = a.finish();
    lockstep(&core, &reduced, &program, 10 * 8 + 3 + 2 + 10);
}

#[test]
fn safety_critical_core_runs_safety_critical_programs() {
    let core = build_ibex();
    let subset = RvSubset::safety_critical();
    let reduced = transform(&core, &subset);

    // No JALR / AUIPC / FENCE / ECALL / EBREAK.
    let mut a = Assembler::new();
    let f = a.new_label();
    a.emit(e::addi(1, 0, 21));
    a.jal(2, f); // direct jumps still allowed
    a.emit(e::addi(3, 0, 99)); // skipped
    a.bind(f);
    a.emit(e::add(4, 1, 1));
    a.emit(e::and(5, 4, 1));
    a.emit(e::or(6, 4, 1));
    let program = a.finish();
    lockstep(&core, &reduced, &program, 5);
}

#[test]
fn rv32im_core_runs_multiply_divide() {
    let core = build_ibex();
    let reduced = transform(&core, &RvSubset::rv32im());

    let mut a = Assembler::new();
    a.emit(e::addi(1, 0, -77));
    a.emit(e::addi(2, 0, 13));
    a.emit(e::mul(3, 1, 2));
    a.emit(e::mulh(4, 1, 2));
    a.emit(e::div(5, 1, 2));
    a.emit(e::rem(6, 1, 2));
    a.emit(e::divu(7, 1, 2));
    a.emit(e::remu(8, 1, 2));
    let program = a.finish();
    lockstep(&core, &reduced, &program, 8);
}

#[test]
fn reduced_core_drops_excluded_functionality() {
    // On the RV32I-subset core, register values must still be *correct*
    // for subset programs even though the multiplier was removed; this
    // checks the reduction actually removed the iterative M-unit state.
    let core = build_ibex();
    let res = run_pdat(
        &core.netlist,
        &Environment::Rv {
            subset: &RvSubset::rv32i(),
            ports: vec![core.cut_fetch.clone()],
            mode: ConstraintMode::CutpointBased,
        },
        &fast_config(),
    ).expect("pdat run");
    // The 32-cycle multiply/divide datapath (acc registers + counter) is
    // dead under an RV32I-only environment.
    assert!(
        res.optimized.dff_count < res.baseline.dff_count - 50,
        "M-unit state should be gone: {} -> {}",
        res.baseline.dff_count,
        res.optimized.dff_count
    );
}
