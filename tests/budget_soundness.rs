//! Satellite guarantee for the resource governor: starving any stage of
//! its budget may only *shrink* the proved set, never grow it, and the
//! pipeline always completes with a usable (if less optimized) result.
//!
//! Soundness argument (paper §VII-C): Houdini is monotone in its starting
//! candidate set, and dropping a candidate is always safe — the rewiring
//! stage simply has less to work with. A budget cut that conservatively
//! drops still-unproved candidates therefore yields proved ⊆ fault-free
//! proved.

use pdat_repro::cores::build_ibex;
use pdat_repro::isa::RvSubset;
use pdat_repro::netlist::{CellKind, Netlist};
use pdat_repro::{
    run_pdat, Candidate, CandidateKind, Cause, ConstraintMode, Environment, PdatConfig,
    PdatResult, ProveConfig,
};
use std::collections::HashSet;

type CandKey = (pdat_repro::netlist::NetId, CandidateKind);

fn proved_set(res: &PdatResult) -> HashSet<CandKey> {
    res.proved_invariants.iter().map(key).collect()
}

fn key(c: &Candidate) -> CandKey {
    (c.net, c.kind)
}

/// The keyed-design fixture: a key DFF stuck at 1 gates a mux between the
/// real function and a decoy. PDAT proves the key constant.
fn keyed_design() -> Netlist {
    let mut nl = Netlist::new("locked");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let fb = nl.add_net("fb");
    let key = nl.add_dff(fb, true, "key");
    nl.assign_alias(fb, key);
    let t = nl.add_cell(CellKind::And2, &[a, b], "t");
    let decoy = nl.add_cell(CellKind::Xor2, &[a, b], "decoy");
    let out = nl.add_cell(CellKind::Mux2, &[decoy, t, key], "out");
    nl.add_output("y", out);
    nl
}

fn base_config() -> PdatConfig {
    PdatConfig {
        sim_cycles: 128,
        conflict_budget: Some(40_000),
        max_iterations: 1_000,
        seed: 0xB0D6,
        ..Default::default()
    }
}

#[test]
fn conflict_budget_one_is_subset_on_keyed_design() {
    let nl = keyed_design();
    let free = run_pdat(&nl, &Environment::Unconstrained, &base_config()).expect("pdat run");
    assert!(free.proved >= 1, "oracle run proves the key invariant");
    assert!(free.degradations.is_empty(), "oracle run is unbudgeted");

    // The strict-shrinkage half of this test is a statement about solver
    // difficulty, so it pins the eager, unpreprocessed encoding: with COI +
    // CNF preprocessing (the default) the keyed-design queries finish on
    // propagation alone and a 1-conflict budget no longer starves anything.
    let starved_cfg = PdatConfig {
        conflict_budget: Some(1),
        prove: ProveConfig {
            coi: false,
            preprocess: false,
            ..Default::default()
        },
        ..base_config()
    };
    let starved =
        run_pdat(&nl, &Environment::Unconstrained, &starved_cfg).expect("pdat run");
    let free_set = proved_set(&free);
    let starved_set = proved_set(&starved);
    assert!(
        starved_set.is_subset(&free_set),
        "budget starvation must not invent proofs"
    );
    // One conflict per query cannot complete the mutual-induction proof of
    // the key latch: the starved run proves strictly less.
    assert!(
        starved_set.len() < free_set.len(),
        "expected a strict subset: {} vs {}",
        starved_set.len(),
        free_set.len()
    );
    // And the result is still a valid, behaviour-preserving netlist.
    starved.netlist.validate().expect("degraded netlist valid");
    assert!(starved.optimized.gate_count <= starved.baseline.gate_count + 2);
}

/// The COI + preprocessing prover keeps the starvation guarantee: for any
/// global conflict budget, the proved set is a subset of the unbudgeted
/// fixpoint's, and a budget of zero still completes with a valid netlist.
#[test]
fn starved_coi_proving_is_subset_of_unbudgeted() {
    let nl = keyed_design();
    let free = run_pdat(&nl, &Environment::Unconstrained, &base_config()).expect("pdat run");
    assert!(free.proved >= 1, "oracle run proves the key invariant");
    let free_set = proved_set(&free);

    for budget in [0u64, 1, 3, 10] {
        let starved_cfg = PdatConfig {
            global_conflict_budget: Some(budget),
            prove: ProveConfig {
                shard_size: 1,
                ..Default::default() // COI + preprocessing on
            },
            ..base_config()
        };
        let starved = run_pdat(&nl, &Environment::Unconstrained, &starved_cfg).expect("pdat run");
        let starved_set = proved_set(&starved);
        assert!(
            starved_set.is_subset(&free_set),
            "budget={budget}: a starved COI prover must not invent proofs"
        );
        starved.netlist.validate().expect("degraded netlist valid");
    }
}

#[test]
fn zero_cycle_budget_drops_everything_but_completes() {
    let nl = keyed_design();
    let free = run_pdat(&nl, &Environment::Unconstrained, &base_config()).expect("pdat run");
    assert!(free.proved >= 1);

    let cfg = PdatConfig {
        global_cycle_budget: Some(0),
        ..base_config()
    };
    let starved = run_pdat(&nl, &Environment::Unconstrained, &cfg).expect("pdat run");
    assert_eq!(
        starved.sim_survivors, 0,
        "no simulation budget means no vetted candidates"
    );
    assert_eq!(starved.proved, 0);
    assert!(
        starved
            .degradations
            .iter()
            .any(|e| e.cause == Cause::CycleBudget),
        "the cut must be recorded: {:?}",
        starved.degradations
    );
    // Degradation is strict: the free run proves a nonempty set.
    assert!(proved_set(&starved).is_subset(&proved_set(&free)));
    starved.netlist.validate().expect("degraded netlist valid");
}

#[test]
fn conflict_budget_one_is_subset_on_ibex() {
    let core = build_ibex();
    let subset = RvSubset::rv32i();
    let env = Environment::Rv {
        subset: &subset,
        ports: vec![core.cut_fetch.clone()],
        mode: ConstraintMode::CutpointBased,
    };
    let free = run_pdat(&core.netlist, &env, &base_config()).expect("pdat run");
    assert!(free.proved >= 1, "oracle proves invariants on ibex");

    let starved_cfg = PdatConfig {
        conflict_budget: Some(1),
        ..base_config()
    };
    let starved = run_pdat(&core.netlist, &env, &starved_cfg).expect("pdat run");
    let free_set = proved_set(&free);
    let starved_set = proved_set(&starved);
    assert!(
        starved_set.is_subset(&free_set),
        "ibex: starved proofs must be a subset"
    );
    assert!(
        starved_set.len() < free_set.len(),
        "ibex: expected strict shrinkage, both {}",
        free_set.len()
    );
    starved.netlist.validate().expect("degraded netlist valid");
}

/// Sharded proving keeps the subset guarantee under starvation at every
/// thread count: each shard pre-apportions its slice of the global
/// conflict pool and conservatively drops what it cannot finish, so a
/// starved parallel run may only prove a subset of what the unbudgeted
/// single-thread fixpoint proves — never something new.
#[test]
fn starved_parallel_proving_is_subset_per_thread_count() {
    let nl = keyed_design();
    let free = run_pdat(&nl, &Environment::Unconstrained, &base_config()).expect("pdat run");
    assert!(free.proved >= 1, "oracle run proves the key invariant");
    assert!(free.degradations.is_empty(), "oracle run is unbudgeted");
    let free_set = proved_set(&free);

    for threads in [1usize, 2, 4, 8] {
        let starved_cfg = PdatConfig {
            global_conflict_budget: Some(1),
            prove: ProveConfig {
                threads,
                shard_size: 1, // one candidate per shard: worst-case split
                ..Default::default()
            },
            ..base_config()
        };
        let starved = run_pdat(&nl, &Environment::Unconstrained, &starved_cfg).expect("pdat run");
        let starved_set = proved_set(&starved);
        assert!(
            starved_set.is_subset(&free_set),
            "threads={threads}: a starved parallel prover must not invent proofs"
        );
        assert!(
            starved
                .degradations
                .iter()
                .any(|e| e.cause == Cause::ConflictBudget),
            "threads={threads}: starvation must be recorded: {:?}",
            starved.degradations
        );
        starved.netlist.validate().expect("degraded netlist valid");
    }
}

#[test]
fn global_conflict_budget_degrades_with_event() {
    let nl = keyed_design();
    let cfg = PdatConfig {
        global_conflict_budget: Some(0),
        ..base_config()
    };
    let res = run_pdat(&nl, &Environment::Unconstrained, &cfg).expect("pdat run");
    assert_eq!(res.proved, 0);
    assert!(
        res.degradations
            .iter()
            .any(|e| e.cause == Cause::ConflictBudget),
        "global conflict exhaustion must be recorded: {:?}",
        res.degradations
    );
    res.netlist.validate().expect("degraded netlist valid");
}
