//! Soundness of the subset-lattice proof cache under random chains.
//!
//! For random chains `E0 ⊇ E1 ⊇ E2 ⊇ E3` of RV32I subsets the cache
//! must be a *pure accelerator*:
//!
//! - warm-started answers (lattice hits that inject an ancestor's proved
//!   set as pre-committed Houdini hypotheses) are bit-identical to cold
//!   runs of the same request — monotonicity along the lattice means a
//!   warm start can neither invent nor lose invariants;
//! - a budget-starved warm run proves a *subset* of the unbudgeted warm
//!   run (mirroring `tests/budget_soundness.rs` for the cached path),
//!   and, being degraded, is never inserted into the cache.
//!
//! The fixture is a small instruction-port design whose proved set
//! genuinely varies with the subset: one exact-pattern detector per
//! watched instruction feeds a sticky latch, so removing a watched
//! instruction from the environment makes its detector (and latch)
//! provably constant-false.

use pdat_repro::isa::rv32::RvInstr;
use pdat_repro::isa::RvSubset;
use pdat_repro::netlist::{CellKind, NetId, Netlist};
use pdat_repro::{
    run_pdat_batch, run_pdat_cached, BatchRequest, CacheEffect, ConstraintMode, Environment,
    PdatConfig, ProofCache, SubsetReport,
};
use proptest::prelude::*;
use std::collections::HashSet;

/// Instructions the fixture watches for. Removing any of these from the
/// subset turns its detector into a provable constant.
const WATCHED: [RvInstr; 8] = [
    RvInstr::Add,
    RvInstr::Sub,
    RvInstr::Xor,
    RvInstr::Jalr,
    RvInstr::Lb,
    RvInstr::Sw,
    RvInstr::Andi,
    RvInstr::Beq,
];

/// A 32-bit instruction port driving one exact-pattern detector and one
/// sticky "ever seen" latch per watched instruction.
fn detector_core() -> (Netlist, Vec<NetId>) {
    let mut nl = Netlist::new("rvdet");
    let port: Vec<NetId> = (0..32).map(|b| nl.add_input(&format!("i{b}"))).collect();
    for instr in WATCHED {
        let p = instr.pattern();
        let tag = format!("{instr:?}").to_lowercase();
        let mut acc: Option<NetId> = None;
        for b in 0..32 {
            if p.mask >> b & 1 == 0 {
                continue;
            }
            let bit = if p.value >> b & 1 == 1 {
                port[b]
            } else {
                nl.add_cell(CellKind::Inv, &[port[b]], &format!("{tag}_n{b}"))
            };
            acc = Some(match acc {
                None => bit,
                Some(a) => nl.add_cell(CellKind::And2, &[a, bit], &format!("{tag}_a{b}")),
            });
        }
        let det = acc.expect("pattern has masked bits");
        let fb = nl.add_net(&format!("{tag}_fb"));
        let q = nl.add_dff(fb, false, &format!("{tag}_seen"));
        let sticky = nl.add_cell(CellKind::Or2, &[q, det], &format!("{tag}_sticky"));
        nl.assign_alias(fb, sticky);
        nl.add_output(&format!("saw_{tag}"), sticky);
    }
    nl.validate().expect("fixture netlist valid");
    (nl, port)
}

fn base_config() -> PdatConfig {
    PdatConfig {
        sim_cycles: 64,
        conflict_budget: Some(40_000),
        max_iterations: 1_000,
        seed: 0xCAC4E,
        ..Default::default()
    }
}

/// Deterministic xorshift so the chain derivation needs no extra deps.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Remove `n` random forms (keeping at least 8) — a strict descendant.
fn shrink(rng: &mut XorShift, base: &RvSubset, n: usize, name: &str) -> RvSubset {
    let mut forms: Vec<RvInstr> = base.instrs.iter().copied().collect();
    let n = n.max(1).min(forms.len().saturating_sub(8));
    for _ in 0..n {
        let k = rng.below(forms.len());
        forms.swap_remove(k);
    }
    RvSubset::new(name, forms)
}

/// `E0 ⊇ E1 ⊇ E2 ⊇ E3`, all strict.
fn chain(seed: u64) -> Vec<RvSubset> {
    let mut rng = XorShift(seed | 1);
    let (n0, n1) = (1 + rng.below(2), 2 + rng.below(3));
    let (n2, n3) = (2 + rng.below(3), 2 + rng.below(2));
    let e0 = shrink(&mut rng, &RvSubset::rv32i(), n0, "e0");
    let e1 = shrink(&mut rng, &e0, n1, "e1");
    let e2 = shrink(&mut rng, &e1, n2, "e2");
    let e3 = shrink(&mut rng, &e2, n3, "e3");
    vec![e0, e1, e2, e3]
}

fn port_env<'a>(subset: &'a RvSubset, port: &[NetId]) -> Environment<'a> {
    Environment::Rv {
        subset,
        ports: vec![port.to_vec()],
        mode: ConstraintMode::PortBased,
    }
}

fn cold(nl: &Netlist, env: &Environment<'_>, config: &PdatConfig) -> SubsetReport {
    let fresh = ProofCache::new();
    let report = run_pdat_cached(nl, env, &[], config, &fresh).expect("cold run");
    assert!(matches!(report.cache, CacheEffect::Miss));
    report
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Warm-started answers along a random chain are bit-identical to
    /// cold runs, and budget starvation of a warm run only shrinks the
    /// proved set.
    #[test]
    fn warm_equals_cold_and_starved_warm_shrinks(seed in any::<u64>()) {
        let (nl, port) = detector_core();
        let config = base_config();
        let subsets = chain(seed);

        // Cold oracle for the first three links, each with a fresh cache.
        let cold_reports: Vec<SubsetReport> = subsets[..3]
            .iter()
            .map(|s| cold(&nl, &port_env(s, &port), &config))
            .collect();
        // The chain is strict, so the proved sets grow along it (every
        // removal makes at least one more detector provably dead).
        prop_assert!(cold_reports[0].proved.len() <= cold_reports[2].proved.len());

        // Warm pass: one batch, one shared cache. E0 misses; E1 and E2
        // are strict descendants, so they must warm-start off an
        // ancestor — and still answer bit-identically.
        let shared = ProofCache::new();
        let requests: Vec<BatchRequest> = subsets[..3]
            .iter()
            .map(|s| BatchRequest { env: port_env(s, &port), extras: Vec::new() })
            .collect();
        let warm: Vec<SubsetReport> = run_pdat_batch(&nl, &requests, &config, &shared)
            .expect("warm batch")
            .into_iter()
            .map(|r| r.expect("well-formed warm request"))
            .collect();
        prop_assert!(matches!(warm[0].cache, CacheEffect::Miss));
        for (i, (c, w)) in cold_reports.iter().zip(&warm).enumerate() {
            prop_assert_eq!(
                &c.proved, &w.proved,
                "chain link {} diverged between cold and warm", i
            );
            prop_assert_eq!(
                c.summary.optimized.gate_count,
                w.summary.optimized.gate_count
            );
            if i > 0 {
                prop_assert!(
                    matches!(w.cache, CacheEffect::LatticeHit { .. }),
                    "strict descendant {} should warm-start, got {:?}", i, w.cache
                );
            }
        }

        // E3 starved: one SAT conflict per query. Still a lattice hit
        // (E3 is not cached), still sound — proves at most what the
        // unbudgeted warm run proves — and, being degraded, must not
        // enter the cache.
        let starved_cfg = PdatConfig { conflict_budget: Some(1), ..base_config() };
        let env3 = port_env(&subsets[3], &port);
        let cached_before = shared.len();
        let starved = run_pdat_cached(&nl, &env3, &[], &starved_cfg, &shared)
            .expect("starved warm run");
        prop_assert!(matches!(starved.cache, CacheEffect::LatticeHit { .. }));
        if let Some(res) = &starved.result {
            if !res.degradations.is_empty() {
                prop_assert_eq!(
                    shared.len(), cached_before,
                    "a degraded run must not be cached"
                );
            }
        }
        let unbudgeted = run_pdat_cached(&nl, &env3, &[], &config, &shared)
            .expect("unbudgeted warm run");
        let starved_set: HashSet<_> = starved.proved.iter().collect();
        let unbudgeted_set: HashSet<_> = unbudgeted.proved.iter().collect();
        prop_assert!(
            starved_set.is_subset(&unbudgeted_set),
            "budget starvation must not invent proofs"
        );
        // And the deepest link agrees with its own cold oracle.
        let cold3 = cold(&nl, &env3, &config);
        prop_assert_eq!(&cold3.proved, &unbudgeted.proved);
    }
}

/// The fixture really discriminates: dropping a watched instruction
/// grows the proved set (its detector dies), so the cache is tested on
/// environments with genuinely different fixpoints.
#[test]
fn detector_fixture_is_subset_sensitive() {
    let (nl, port) = detector_core();
    let config = base_config();
    let full = RvSubset::rv32i();
    let mut no_add = RvSubset::rv32i();
    no_add.instrs.remove(&RvInstr::Add);
    no_add.name = "no-add".to_string();

    let base = cold(&nl, &port_env(&full, &port), &config);
    let restricted = cold(&nl, &port_env(&no_add, &port), &config);
    assert!(
        restricted.proved.len() > base.proved.len(),
        "removing Add must kill its detector: {} vs {}",
        restricted.proved.len(),
        base.proved.len()
    );
}
