//! The structural text format is a faithful interchange boundary: a full
//! processor core survives a write/parse round trip with identical
//! cycle-by-cycle behaviour, and PDAT results can be serialized.

use pdat_repro::cores::build_ibex;
use pdat_repro::netlist::{parse_netlist, write_netlist, Simulator};

#[test]
fn ibex_core_round_trips_through_text() {
    let core = build_ibex();
    let text = write_netlist(&core.netlist);
    assert!(text.len() > 100_000, "a real core serializes to real text");
    let back = parse_netlist(&text).expect("parses");
    back.validate().expect("valid after round trip");
    assert_eq!(back.gate_count(), core.netlist.gate_count());
    assert_eq!(back.inputs().len(), core.netlist.inputs().len());
    assert_eq!(back.outputs().len(), core.netlist.outputs().len());

    // Drive both netlists with the same instruction for a few cycles.
    let mut s1 = Simulator::new(&core.netlist);
    let mut s2 = Simulator::new(&back);
    let in1 = core.netlist.inputs().to_vec();
    let in2 = back.inputs().to_vec();
    let nop = pdat_repro::isa::rv32::addi(0, 0, 0) as u64;
    for cycle in 0..8 {
        let a1: Vec<_> = in1
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, nop >> (i % 32) & 1 == 1))
            .collect();
        let a2: Vec<_> = in2
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, nop >> (i % 32) & 1 == 1))
            .collect();
        s1.set_inputs(&a1);
        s2.set_inputs(&a2);
        for ((p1, n1), (p2, n2)) in core.netlist.outputs().iter().zip(back.outputs()) {
            assert_eq!(p1, p2);
            assert_eq!(s1.value(*n1), s2.value(*n2), "cycle {cycle} output {p1}");
        }
        s1.step();
        s2.step();
    }
}

#[test]
fn rewired_netlist_round_trips() {
    // PDAT rewiring assignments (const + alias) survive serialization.
    let mut nl = build_ibex().netlist;
    let some_cell_out = nl.cells().nth(100).map(|(_, c)| c.output).unwrap();
    let another = nl.cells().nth(200).map(|(_, c)| c.output).unwrap();
    nl.assign_const(some_cell_out, true);
    let first_input = nl.inputs()[0];
    nl.assign_alias(another, first_input);
    let text = write_netlist(&nl);
    let back = parse_netlist(&text).expect("parses");
    // The rewiring must be present in the parsed netlist (as assigns).
    let tied = back
        .nets()
        .filter(|(n, _)| matches!(back.driver(*n), pdat_repro::netlist::Driver::Const(true)))
        .count();
    assert!(tied >= 1, "const assign lost in round trip");
}
