//! The MiBench-like kernels run on the *gate-level* Ibex-class core and
//! must produce exactly the results the instruction-set simulator produces
//! — closing the loop between the workload substrate (Table I) and the
//! hardware substrate (Figs. 5/7).

use pdat_repro::cores::{build_ibex, CoreHarness};
use pdat_repro::workloads::{kernels_rv, run_rv_kernel, RvKernel};

fn gate_level_result(kernel: &RvKernel) -> (u32, u64) {
    let core = build_ibex();
    let mut h = CoreHarness::new(&core, &kernel.image, 4096);
    // Run until the trap for `ecall` fires (the core redirects to mtvec=0;
    // we simply stop at the first trap strobe by bounding on retires).
    let iss = run_rv_kernel(kernel);
    let want_retires = iss.retired as usize + 1; // + the ecall itself
    let got = h.run_until_retires(want_retires, kernel.fuel * 40);
    assert_eq!(
        got, want_retires,
        "{}: gate-level core stalled ({} of {} retires)",
        kernel.name, got, want_retires
    );
    (h.reg(10), h.cycles())
}

#[test]
fn basicmath_matches_iss_on_gates() {
    let k = kernels_rv::basicmath();
    let iss = run_rv_kernel(&k);
    let (x10, cycles) = gate_level_result(&k);
    assert_eq!(x10, iss.regs[10], "basicmath diverged");
    // div/rem stall 33 cycles each: the gate-level run must be much longer
    // than the instruction count.
    assert!(cycles > iss.retired, "mul/div stalls expected");
}

#[test]
fn crc32_matches_iss_on_gates() {
    let k = kernels_rv::crc32();
    let iss = run_rv_kernel(&k);
    let (x10, _) = gate_level_result(&k);
    assert_eq!(x10, iss.regs[10], "crc32 diverged");
}

#[test]
fn patricia_matches_iss_on_gates() {
    let k = kernels_rv::patricia();
    let iss = run_rv_kernel(&k);
    let (x10, _) = gate_level_result(&k);
    assert_eq!(x10, iss.regs[10], "patricia diverged");
}

#[test]
fn sha_mix_matches_iss_on_gates() {
    let k = kernels_rv::sha_mix();
    let iss = run_rv_kernel(&k);
    let (x10, _) = gate_level_result(&k);
    assert_eq!(x10, iss.regs[10], "sha_mix diverged");
}

#[test]
fn qsort_matches_iss_on_gates() {
    let k = kernels_rv::qsort();
    let iss = run_rv_kernel(&k);
    let (x10, _) = gate_level_result(&k);
    assert_eq!(x10, iss.regs[10], "qsort diverged");
}
