//! End-to-end tests for the Cortex-M0-class path: obfuscation preserves
//! behaviour, PDAT strips the obfuscation overhead, and the transformed
//! (clean) core still runs Thumb programs in lockstep.

use pdat_repro::cores::{
    build_cortexm0, obfuscate, rebind_cortexm0, CortexM0Core, ObfuscateConfig, ThumbHarness,
};
use pdat_repro::isa::armv6m::{encode::*, ThumbAssembler};
use pdat_repro::isa::ThumbSubset;
use pdat_repro::{run_pdat, ConstraintMode, Environment, PdatConfig};

fn fast_config() -> PdatConfig {
    PdatConfig {
        sim_cycles: 192,
        conflict_budget: Some(60_000),
        max_iterations: 2_000,
        seed: 0xA0A0,
        ..Default::default()
    }
}

fn demo_program() -> Vec<u8> {
    // Mixed ALU/memory/branch program ending in bkpt.
    let mut a = ThumbAssembler::new();
    a.emit(t_mov_imm(0, 5));
    a.emit(t_mov_imm(1, 0));
    a.emit(t_mov_imm(4, 1));
    a.emit(t_lsl_imm(4, 4, 8)); // base 256
    let top = a.here();
    a.emit(t_add_reg(1, 1, 0));
    a.emit(t_lsl_imm(2, 0, 2));
    a.emit(t_str_reg(1, 4, 2));
    a.emit(t_sub_imm8(0, 1));
    let off = top as i64 - (a.here() as i64 + 4);
    a.emit(t_b_cond(Cond::Ne, off as i32));
    a.emit(t_ldr_imm(3, 4, 4));
    a.emit(0xBE00); // bkpt
    a.finish()
}

fn run_both(a: &CortexM0Core, b: &CortexM0Core, program: &[u8]) {
    let mut h1 = ThumbHarness::new(a, program, 2048);
    let mut h2 = ThumbHarness::new(b, program, 2048);
    let n1 = h1.run_until_retires(60, 5_000);
    let n2 = h2.run_until_retires(60, 5_000);
    assert_eq!(n1, n2, "retire counts diverge");
    for r in 0..13 {
        assert_eq!(h1.reg(r), h2.reg(r), "r{r} diverges");
    }
    assert_eq!(h1.dmem, h2.dmem, "data memory diverges");
}

#[test]
fn obfuscated_core_executes_like_clean_core() {
    let core = build_cortexm0();
    let (obf_nl, _map) = obfuscate(&core.netlist, &ObfuscateConfig::default());
    obf_nl.validate().expect("obfuscated core valid");
    let obf = rebind_cortexm0(obf_nl);
    run_both(&core, &obf, &demo_program());
}

#[test]
fn pdat_strips_obfuscation_overhead_and_preserves_behaviour() {
    let core = build_cortexm0();
    let (obf_nl, map) = obfuscate(&core.netlist, &ObfuscateConfig::default());
    let port: Vec<_> = core.instr_in.iter().map(|n| map[n]).collect();
    let subset = ThumbSubset::armv6m();
    let res = run_pdat(
        &obf_nl,
        &Environment::Thumb {
            subset: &subset,
            port,
            mode: ConstraintMode::PortBased,
        },
        &fast_config(),
    ).expect("pdat run");
    assert!(
        res.gate_reduction() > 0.05,
        "full-ISA PDAT should strip obfuscation overhead, got {:.1}%",
        100.0 * res.gate_reduction()
    );
    // The de-bloated core still matches the clean core on real programs.
    let recovered = rebind_cortexm0(res.netlist);
    run_both(&core, &recovered, &demo_program());
}

#[test]
fn interesting_subset_core_runs_interesting_programs() {
    let core = build_cortexm0();
    let subset = ThumbSubset::interesting_subset();
    let res = run_pdat(
        &core.netlist,
        &Environment::Thumb {
            subset: &subset,
            port: core.instr_in.clone(),
            mode: ConstraintMode::PortBased,
        },
        &fast_config(),
    ).expect("pdat run");
    assert!(res.optimized.gate_count < res.baseline.gate_count);
    let reduced = rebind_cortexm0(res.netlist);
    // demo_program uses only two-byte, non-multiply, non-barrier forms:
    // it is in the interesting subset.
    run_both(&core, &reduced, &demo_program());
}
