//! The paper's Fig. 3 versatility claims: environment restrictions beyond
//! ISA subsets — pinned inputs (disabled IRQ lines, strapped config pins)
//! and explicit code-at-address mappings (reset handlers, trap vectors).

use pdat_repro::cores::build_ibex;
use pdat_repro::isa::RvSubset;
use pdat_repro::netlist::{CellKind, Netlist};
use pdat_repro::{
    run_pdat, run_pdat_with, ConstraintMode, Environment, ExtraRestriction, PdatConfig,
};

fn fast_config() -> PdatConfig {
    PdatConfig {
        sim_cycles: 128,
        conflict_budget: Some(40_000),
        max_iterations: 1_000,
        seed: 0xE17A,
        ..Default::default()
    }
}

#[test]
fn pinned_input_enables_removal() {
    // A "mode pin" gates a datapath; pinning it removes the gated logic.
    let mut nl = Netlist::new("pinned");
    let mode = nl.add_input("mode");
    let d: Vec<_> = (0..8).map(|i| nl.add_input(format!("d[{i}]"))).collect();
    let mut accum = Vec::new();
    for (i, &bit) in d.iter().enumerate() {
        let gated = nl.add_cell(CellKind::And2, &[bit, mode], format!("g{i}"));
        let q = nl.add_dff(gated, false, format!("q{i}"));
        accum.push(q);
        nl.add_output(format!("u[{i}]"), q);
    }
    let cheap = nl.add_cell(CellKind::Xor2, &[d[0], d[1]], "cheap");
    nl.add_output("y", cheap);

    // Unrestricted: the gated pipeline stays.
    let base = run_pdat(&nl, &Environment::Unconstrained, &fast_config()).expect("pdat run");
    assert!(base.optimized.dff_count == 8);

    // With `mode` pinned low the whole unit is provably dead.
    let res = run_pdat_with(
        &nl,
        &Environment::Unconstrained,
        &[ExtraRestriction::PinnedInput {
            nets: vec![mode],
            value: 0,
        }],
        &fast_config(),
    ).expect("pdat run");
    assert_eq!(res.optimized.dff_count, 0, "pinned-mode unit removed");
    assert!(res.optimized.gate_count < base.optimized.gate_count);
}

#[test]
fn code_at_reset_address_is_respected() {
    // Pin the instruction at the reset address to a specific NOP-like word
    // on a tiny fetch model: addr register, instr input, decode of a "boot"
    // flag that only a non-NOP at the reset address could set.
    let mut nl = Netlist::new("rom");
    let instr: Vec<_> = (0..8).map(|i| nl.add_input(format!("instr[{i}]"))).collect();
    // 2-bit pc counter.
    let pc0_fb = nl.add_net("pc0_fb");
    let pc1_fb = nl.add_net("pc1_fb");
    let pc0_n = nl.add_cell(CellKind::Inv, &[pc0_fb], "pc0_n");
    let carry = pc0_fb;
    let pc1_x = nl.add_cell(CellKind::Xor2, &[pc1_fb, carry], "pc1_x");
    let pc0 = nl.add_dff(pc0_n, false, "pc0");
    let pc1 = nl.add_dff(pc1_x, false, "pc1");
    nl.assign_alias(pc0_fb, pc0);
    nl.assign_alias(pc1_fb, pc1);
    // at_reset = pc == 0
    let npc0 = nl.add_cell(CellKind::Inv, &[pc0], "npc0");
    let npc1 = nl.add_cell(CellKind::Inv, &[pc1], "npc1");
    let at_reset = nl.add_cell(CellKind::And2, &[npc0, npc1], "at_reset");
    // boot_flag latches if instr != 0x13 while at the reset address.
    let want = 0x13u32;
    let mut diff_terms = Vec::new();
    for (i, &b) in instr.iter().enumerate() {
        let t = if want >> i & 1 == 1 {
            nl.add_cell(CellKind::Inv, &[b], format!("dx{i}"))
        } else {
            b
        };
        diff_terms.push(t);
    }
    // any difference bit set?
    let mut any = diff_terms[0];
    for (i, &t) in diff_terms.iter().enumerate().skip(1) {
        any = nl.add_cell(CellKind::Or2, &[any, t], format!("or{i}"));
    }
    let bad = nl.add_cell(CellKind::And2, &[any, at_reset], "bad");
    let boot_fb = nl.add_net("boot_fb");
    let boot_next = nl.add_cell(CellKind::Or2, &[boot_fb, bad], "boot_next");
    let boot = nl.add_dff(boot_next, false, "boot");
    nl.assign_alias(boot_fb, boot);
    nl.add_output("boot", boot);
    nl.add_output("pc0", pc0);
    nl.add_output("pc1", pc1);
    nl.validate().unwrap();

    // Without the mapping, `boot` can be set: it survives.
    let base = run_pdat(&nl, &Environment::Unconstrained, &fast_config()).expect("pdat run");
    assert!(base.optimized.dff_count >= 3, "boot latch must survive");

    // With the reset-address word pinned, `boot` is provably stuck at 0.
    let res = run_pdat_with(
        &nl,
        &Environment::Unconstrained,
        &[ExtraRestriction::CodeAt {
            addr: vec![pc0, pc1],
            data: instr.clone(),
            address: 0,
            word: want,
        }],
        &fast_config(),
    ).expect("pdat run");
    assert!(
        res.optimized.dff_count < base.optimized.dff_count,
        "boot latch removed under the code-at-reset mapping: {} vs {}",
        res.optimized.dff_count,
        base.optimized.dff_count
    );
}

#[test]
fn combined_isa_and_pin_restrictions_on_ibex() {
    // ISA subset + a pinned data-bus nibble: restrictions compose.
    let core = build_ibex();
    let subset = RvSubset::rv32i();
    let pins = core.data_rdata_in[28..32].to_vec();
    let res = run_pdat_with(
        &core.netlist,
        &Environment::Rv {
            subset: &subset,
            ports: vec![core.cut_fetch.clone()],
            mode: ConstraintMode::CutpointBased,
        },
        &[ExtraRestriction::PinnedInput {
            nets: pins,
            value: 0,
        }],
        &fast_config(),
    ).expect("pdat run");
    let plain = run_pdat(
        &core.netlist,
        &Environment::Rv {
            subset: &subset,
            ports: vec![core.cut_fetch.clone()],
            mode: ConstraintMode::CutpointBased,
        },
        &fast_config(),
    ).expect("pdat run");
    assert!(
        res.optimized.gate_count <= plain.optimized.gate_count,
        "extra restriction can only help: {} vs {}",
        res.optimized.gate_count,
        plain.optimized.gate_count
    );
}
