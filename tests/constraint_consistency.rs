//! Cross-checks the three views of an ISA subset against each other for
//! *every* named subset in the repository: the membership predicate
//! (`RvSubset::contains`), the software decoder (`decode_form`), and the
//! hardware recognizer circuit built by the constraint compiler. A mismatch
//! in any direction would make PDAT prove invariants under the wrong
//! environment.

use pdat_repro::aig::{Aig, AigLit, AigSimulator};
use pdat_repro::isa::rv32::decode_form;
use pdat_repro::isa::RvSubset;
use pdat_repro::rv_constraint;
use pdat_repro::workloads::{mibench_rv_all, mibench_rv_subset, BenchGroup};

fn recognizer(subset: &RvSubset) -> (Aig, AigLit) {
    let mut aig = Aig::new();
    let lits: Vec<AigLit> = (0..32).map(|_| aig.add_input()).collect();
    let idx: Vec<usize> = (0..32).collect();
    let (lit, _c) = rv_constraint(&mut aig, &lits, idx, subset);
    (aig, lit)
}

fn accepts(aig: &Aig, lit: AigLit, word: u32) -> bool {
    let mut sim = AigSimulator::new(aig);
    let inputs: Vec<u64> = (0..aig.inputs().len())
        .map(|i| {
            if i < 32 && word >> i & 1 == 1 {
                u64::MAX
            } else {
                0
            }
        })
        .collect();
    sim.eval(&inputs);
    sim.lit_word(lit) & 1 == 1
}

fn all_named_subsets() -> Vec<RvSubset> {
    vec![
        RvSubset::rv32imcz(),
        RvSubset::rv32imc(),
        RvSubset::rv32im(),
        RvSubset::rv32ic(),
        RvSubset::rv32i(),
        RvSubset::reduced_addressing(),
        RvSubset::safety_critical(),
        RvSubset::no_parallelism(),
        RvSubset::aligned(),
        RvSubset::risc16(),
        mibench_rv_subset(BenchGroup::Networking),
        mibench_rv_subset(BenchGroup::Security),
        mibench_rv_subset(BenchGroup::Automotive),
        mibench_rv_all(),
    ]
}

/// Deterministic xorshift for word fuzzing without extra dependencies.
fn words(seed: u64, n: usize) -> Vec<u32> {
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s as u32
        })
        .collect()
}

#[test]
fn recognizer_agrees_with_decoder_and_membership() {
    for subset in all_named_subsets() {
        let (aig, lit) = recognizer(&subset);
        // Canonical encodings of every form: accepted iff in the subset.
        for form in pdat_repro::isa::rv32::RvInstr::ALL {
            let p = form.pattern();
            let word = p.value;
            // The canonical value may be claimed by a higher-priority form;
            // use the decoder as the ground truth for identity.
            let decoded = decode_form(word);
            if decoded != Some(form) {
                continue;
            }
            let expect = subset.contains(form) && subset.reg_limit.is_none();
            // (reg-limited subsets are handled in the fuzz loop below)
            if subset.reg_limit.is_none() {
                assert_eq!(
                    accepts(&aig, lit, word),
                    expect,
                    "{}: canonical {form} word {word:#010x}",
                    subset.name
                );
            }
        }
        // Random words: recognizer acceptance must imply the decoded form
        // is in the subset, and rejection must imply either undecodable or
        // out-of-subset (modulo the RV32E register ceiling).
        for word in words(0xC0415EED ^ subset.instrs.len() as u64, 4000) {
            let hw_ok = accepts(&aig, lit, word);
            match decode_form(word) {
                Some(form) => {
                    if hw_ok {
                        assert!(
                            subset.contains(form),
                            "{}: accepted {word:#010x} decoding to out-of-subset {form}",
                            subset.name
                        );
                    } else if subset.contains(form) && subset.reg_limit.is_none() {
                        panic!(
                            "{}: rejected {word:#010x} decoding to in-subset {form}",
                            subset.name
                        );
                    }
                }
                None => {
                    assert!(
                        !hw_ok,
                        "{}: accepted undecodable word {word:#010x}",
                        subset.name
                    );
                }
            }
        }
    }
}

#[test]
fn rv32e_ceiling_is_exact() {
    let subset = RvSubset::rv32e();
    let (aig, lit) = recognizer(&subset);
    use pdat_repro::isa::rv32::encode as e;
    for r in 0..32 {
        assert_eq!(
            accepts(&aig, lit, e::add(r, 1, 2)),
            r < 16,
            "rd = x{r}"
        );
        assert_eq!(
            accepts(&aig, lit, e::add(1, r, 2)),
            r < 16,
            "rs1 = x{r}"
        );
        assert_eq!(
            accepts(&aig, lit, e::add(1, 2, r)),
            r < 16,
            "rs2 = x{r}"
        );
    }
    // Immediate bits overlapping the rs2 field position must stay free.
    assert!(accepts(&aig, lit, e::addi(1, 2, 0x7FF)));
    assert!(accepts(&aig, lit, e::jal(1, (1 << 20) - 2)));
}
