//! Thread-count invariance of the full pipeline: the falsification engine
//! parallelizes over lane blocks whose RNG streams depend only on
//! `(seed, block_index)`, and the per-block kill sets are merged with a
//! commutative union — so the proved invariant set, the transformed
//! netlist, and the falsification counters must be bit-identical no matter
//! how many worker threads run the simulation.
//!
//! The proving stage makes the same promise for its sharded fixpoint:
//! shard contents, per-shard conflict allowances, and the round structure
//! depend only on `(candidate order, shard_size)` — threads only decide
//! which worker happens to run a shard — so the proved invariants and the
//! per-shard solver counters must be bit-identical for any thread count.

use pdat_repro::cores::build_ibex;
use pdat_repro::isa::RvSubset;
use pdat_repro::netlist::{CellKind, Netlist};
use pdat_repro::{
    run_pdat, ConstraintMode, Environment, PdatConfig, PdatResult, ProveConfig,
};

fn config_with_threads(threads: usize) -> PdatConfig {
    PdatConfig {
        sim_cycles: 96,
        lane_blocks: 4,
        sim_threads: threads,
        conflict_budget: Some(40_000),
        max_iterations: 1_000,
        seed: 0xD7E2,
        ..Default::default()
    }
}

fn run(threads: usize) -> PdatResult {
    let core = build_ibex();
    let subset = RvSubset::rv32i();
    run_pdat(
        &core.netlist,
        &Environment::Rv {
            subset: &subset,
            ports: vec![core.cut_fetch.clone()],
            mode: ConstraintMode::CutpointBased,
        },
        &config_with_threads(threads),
    ).expect("pdat run")
}

#[test]
fn proved_set_is_identical_for_1_2_4_threads() {
    let r1 = run(1);
    let r2 = run(2);
    let r4 = run(4);
    for (label, r) in [("2", &r2), ("4", &r4)] {
        assert_eq!(
            r1.sim_survivors, r.sim_survivors,
            "threads={label} changed the simulation survivor count"
        );
        assert_eq!(
            r1.sim_stats, r.sim_stats,
            "threads={label} changed the falsification stats"
        );
        assert_eq!(
            r1.proved, r.proved,
            "threads={label} changed the proved invariant count"
        );
        assert_eq!(
            r1.optimized, r.optimized,
            "threads={label} changed the optimized netlist stats"
        );
    }
    // The run must actually have done falsification work for the
    // invariance claim to mean anything.
    assert!(r1.sim_stats.kills > 0, "falsification killed nothing");
    assert_eq!(r1.sim_stats.lane_blocks, 4);
}

fn prover_config(threads: usize, shard_size: usize) -> PdatConfig {
    prover_config_enc(threads, shard_size, true, true)
}

fn prover_config_enc(
    threads: usize,
    shard_size: usize,
    coi: bool,
    preprocess: bool,
) -> PdatConfig {
    PdatConfig {
        sim_cycles: 96,
        conflict_budget: Some(40_000),
        max_iterations: 1_000,
        seed: 0x9A8D,
        prove: ProveConfig {
            threads,
            shard_size,
            coi,
            preprocess,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Compare two runs of the sharded prover: the proved invariants (values
/// *and* order) and every per-shard solver counter must match exactly.
fn assert_prove_identical(base: &PdatResult, other: &PdatResult, label: &str) {
    assert_eq!(
        base.proved_invariants, other.proved_invariants,
        "{label}: proved invariant list diverged"
    );
    let (a, b) = (&base.houdini_stats, &other.houdini_stats);
    assert_eq!(a.iterations, b.iterations, "{label}: solve count diverged");
    assert_eq!(a.rounds, b.rounds, "{label}: round count diverged");
    assert_eq!(a.dropped, b.dropped, "{label}: cex drop count diverged");
    assert_eq!(a.conflicts, b.conflicts, "{label}: conflict total diverged");
    assert_eq!(
        a.shard_stats.len(),
        b.shard_stats.len(),
        "{label}: shard count diverged"
    );
    for (sa, sb) in a.shard_stats.iter().zip(&b.shard_stats) {
        assert_eq!(
            (sa.shard, sa.candidates, sa.proved, sa.solves, sa.conflicts),
            (sb.shard, sb.candidates, sb.proved, sb.solves, sb.conflicts),
            "{label}: shard {} counters diverged",
            sa.shard
        );
    }
}

#[test]
fn prover_is_identical_for_1_2_4_8_threads_on_ibex() {
    let core = build_ibex();
    let subset = RvSubset::rv32i();
    let env = Environment::Rv {
        subset: &subset,
        ports: vec![core.cut_fetch.clone()],
        mode: ConstraintMode::CutpointBased,
    };
    // shard_size 1024 splits the ibex survivor set into ~9 shards, so
    // every thread count from 1 to 8 actually exercises work stealing
    // across multiple shards and multiple fixpoint rounds.
    let base = run_pdat(&core.netlist, &env, &prover_config(1, 1024)).expect("pdat run");
    assert!(
        base.houdini_stats.shard_stats.len() > 4,
        "fixture must shard: got {} shards",
        base.houdini_stats.shard_stats.len()
    );
    assert!(base.proved > 0, "fixture must prove something");
    assert!(base.houdini_stats.dropped > 0, "fixture must drop something");
    for threads in [2usize, 4, 8] {
        let r = run_pdat(&core.netlist, &env, &prover_config(threads, 1024)).expect("pdat run");
        assert_prove_identical(&base, &r, &format!("ibex threads={threads}"));
        assert_eq!(
            base.optimized, r.optimized,
            "ibex threads={threads}: optimized netlist stats diverged"
        );
    }
}

/// The keyed-design fixture: a key DFF stuck at 1 gates a mux between the
/// real function and a decoy; proving the key constant requires mutual
/// induction across shard boundaries when shard_size forces one candidate
/// per shard.
fn keyed_design() -> Netlist {
    let mut nl = Netlist::new("locked");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let fb = nl.add_net("fb");
    let key = nl.add_dff(fb, true, "key");
    nl.assign_alias(fb, key);
    let t = nl.add_cell(CellKind::And2, &[a, b], "t");
    let decoy = nl.add_cell(CellKind::Xor2, &[a, b], "decoy");
    let out = nl.add_cell(CellKind::Mux2, &[decoy, t, key], "out");
    nl.add_output("y", out);
    nl
}

/// The cone-of-influence shard encoding plus CNF preprocessing must prove
/// the *bit-identical* set the eager full-encoding prover proves, at every
/// thread count: the partial encoding is equisatisfiable with the full one
/// for every query a shard issues, and the Houdini fixpoint is unique, so
/// only the solver counters (different CNFs) may differ — never the
/// proved invariants or the resulting netlist.
#[test]
fn coi_prover_matches_full_encoding_bit_identical_on_ibex() {
    let core = build_ibex();
    let subset = RvSubset::rv32i();
    let env = Environment::Rv {
        subset: &subset,
        ports: vec![core.cut_fetch.clone()],
        mode: ConstraintMode::CutpointBased,
    };
    let full =
        run_pdat(&core.netlist, &env, &prover_config_enc(1, 1024, false, false)).expect("pdat run");
    assert!(full.proved > 0, "fixture must prove something");
    for threads in [1usize, 2, 4, 8] {
        let coi = run_pdat(&core.netlist, &env, &prover_config_enc(threads, 1024, true, true))
            .expect("pdat run");
        assert_eq!(
            full.proved_invariants, coi.proved_invariants,
            "ibex threads={threads}: COI proved set diverged from full encoding"
        );
        assert_eq!(
            full.optimized, coi.optimized,
            "ibex threads={threads}: COI optimized netlist stats diverged"
        );
        // The reduced encoding must actually be smaller, or it isn't a
        // cone-of-influence encoding at all.
        let vars = |r: &PdatResult| -> usize {
            r.houdini_stats.shard_stats.iter().map(|s| s.vars_pre).sum()
        };
        assert!(
            vars(&coi) < vars(&full),
            "ibex threads={threads}: COI encoding is not smaller ({} vs {})",
            vars(&coi),
            vars(&full)
        );
    }
}

#[test]
fn coi_prover_matches_full_encoding_bit_identical_on_keyed_design() {
    let nl = keyed_design();
    let full =
        run_pdat(&nl, &Environment::Unconstrained, &prover_config_enc(1, 1, false, false))
            .expect("pdat run");
    assert!(full.proved >= 1, "keyed design proves the key invariant");
    for threads in [1usize, 2, 4, 8] {
        let coi = run_pdat(&nl, &Environment::Unconstrained, &prover_config_enc(threads, 1, true, true))
            .expect("pdat run");
        assert_eq!(
            full.proved_invariants, coi.proved_invariants,
            "keyed threads={threads}: COI proved set diverged from full encoding"
        );
        assert_eq!(
            full.optimized, coi.optimized,
            "keyed threads={threads}: COI optimized netlist stats diverged"
        );
    }
}

#[test]
fn prover_is_identical_for_1_2_4_8_threads_on_keyed_design() {
    let nl = keyed_design();
    let base = run_pdat(&nl, &Environment::Unconstrained, &prover_config(1, 1)).expect("pdat run");
    assert!(base.proved >= 1, "keyed design proves the key invariant");
    assert!(
        base.houdini_stats.shard_stats.len() >= 2,
        "one candidate per shard must yield multiple shards"
    );
    for threads in [2usize, 4, 8] {
        let r = run_pdat(&nl, &Environment::Unconstrained, &prover_config(threads, 1))
            .expect("pdat run");
        assert_prove_identical(&base, &r, &format!("keyed threads={threads}"));
    }
}
