//! Thread-count invariance of the full pipeline: the falsification engine
//! parallelizes over lane blocks whose RNG streams depend only on
//! `(seed, block_index)`, and the per-block kill sets are merged with a
//! commutative union — so the proved invariant set, the transformed
//! netlist, and the falsification counters must be bit-identical no matter
//! how many worker threads run the simulation.
//!
//! The proving stage makes the same promise for its sharded fixpoint:
//! shard contents, per-shard conflict allowances, and the round structure
//! depend only on `(candidate order, shard_size)` — threads only decide
//! which worker happens to run a shard — so the proved invariants and the
//! per-shard solver counters must be bit-identical for any thread count.

use pdat_repro::cores::build_ibex;
use pdat_repro::isa::RvSubset;
use pdat_repro::netlist::{CellKind, Netlist};
use pdat_repro::{
    run_pdat, ConstraintMode, Environment, PdatConfig, PdatResult, ProveConfig,
};

fn config_with_threads(threads: usize) -> PdatConfig {
    PdatConfig {
        sim_cycles: 96,
        lane_blocks: 4,
        sim_threads: threads,
        conflict_budget: Some(40_000),
        max_iterations: 1_000,
        seed: 0xD7E2,
        ..Default::default()
    }
}

fn run(threads: usize) -> PdatResult {
    let core = build_ibex();
    let subset = RvSubset::rv32i();
    run_pdat(
        &core.netlist,
        &Environment::Rv {
            subset: &subset,
            ports: vec![core.cut_fetch.clone()],
            mode: ConstraintMode::CutpointBased,
        },
        &config_with_threads(threads),
    ).expect("pdat run")
}

#[test]
fn proved_set_is_identical_for_1_2_4_threads() {
    let r1 = run(1);
    let r2 = run(2);
    let r4 = run(4);
    for (label, r) in [("2", &r2), ("4", &r4)] {
        assert_eq!(
            r1.sim_survivors, r.sim_survivors,
            "threads={label} changed the simulation survivor count"
        );
        assert_eq!(
            r1.sim_stats, r.sim_stats,
            "threads={label} changed the falsification stats"
        );
        assert_eq!(
            r1.proved, r.proved,
            "threads={label} changed the proved invariant count"
        );
        assert_eq!(
            r1.optimized, r.optimized,
            "threads={label} changed the optimized netlist stats"
        );
    }
    // The run must actually have done falsification work for the
    // invariance claim to mean anything.
    assert!(r1.sim_stats.kills > 0, "falsification killed nothing");
    assert_eq!(r1.sim_stats.lane_blocks, 4);
}

fn prover_config(threads: usize, shard_size: usize) -> PdatConfig {
    PdatConfig {
        sim_cycles: 96,
        conflict_budget: Some(40_000),
        max_iterations: 1_000,
        seed: 0x9A8D,
        prove: ProveConfig {
            threads,
            shard_size,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Compare two runs of the sharded prover: the proved invariants (values
/// *and* order) and every per-shard solver counter must match exactly.
fn assert_prove_identical(base: &PdatResult, other: &PdatResult, label: &str) {
    assert_eq!(
        base.proved_invariants, other.proved_invariants,
        "{label}: proved invariant list diverged"
    );
    let (a, b) = (&base.houdini_stats, &other.houdini_stats);
    assert_eq!(a.iterations, b.iterations, "{label}: solve count diverged");
    assert_eq!(a.rounds, b.rounds, "{label}: round count diverged");
    assert_eq!(a.dropped, b.dropped, "{label}: cex drop count diverged");
    assert_eq!(a.conflicts, b.conflicts, "{label}: conflict total diverged");
    assert_eq!(
        a.shard_stats.len(),
        b.shard_stats.len(),
        "{label}: shard count diverged"
    );
    for (sa, sb) in a.shard_stats.iter().zip(&b.shard_stats) {
        assert_eq!(
            (sa.shard, sa.candidates, sa.proved, sa.solves, sa.conflicts),
            (sb.shard, sb.candidates, sb.proved, sb.solves, sb.conflicts),
            "{label}: shard {} counters diverged",
            sa.shard
        );
    }
}

#[test]
fn prover_is_identical_for_1_2_4_8_threads_on_ibex() {
    let core = build_ibex();
    let subset = RvSubset::rv32i();
    let env = Environment::Rv {
        subset: &subset,
        ports: vec![core.cut_fetch.clone()],
        mode: ConstraintMode::CutpointBased,
    };
    // shard_size 1024 splits the ibex survivor set into ~9 shards, so
    // every thread count from 1 to 8 actually exercises work stealing
    // across multiple shards and multiple fixpoint rounds.
    let base = run_pdat(&core.netlist, &env, &prover_config(1, 1024)).expect("pdat run");
    assert!(
        base.houdini_stats.shard_stats.len() > 4,
        "fixture must shard: got {} shards",
        base.houdini_stats.shard_stats.len()
    );
    assert!(base.proved > 0, "fixture must prove something");
    assert!(base.houdini_stats.dropped > 0, "fixture must drop something");
    for threads in [2usize, 4, 8] {
        let r = run_pdat(&core.netlist, &env, &prover_config(threads, 1024)).expect("pdat run");
        assert_prove_identical(&base, &r, &format!("ibex threads={threads}"));
        assert_eq!(
            base.optimized, r.optimized,
            "ibex threads={threads}: optimized netlist stats diverged"
        );
    }
}

/// The keyed-design fixture: a key DFF stuck at 1 gates a mux between the
/// real function and a decoy; proving the key constant requires mutual
/// induction across shard boundaries when shard_size forces one candidate
/// per shard.
fn keyed_design() -> Netlist {
    let mut nl = Netlist::new("locked");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let fb = nl.add_net("fb");
    let key = nl.add_dff(fb, true, "key");
    nl.assign_alias(fb, key);
    let t = nl.add_cell(CellKind::And2, &[a, b], "t");
    let decoy = nl.add_cell(CellKind::Xor2, &[a, b], "decoy");
    let out = nl.add_cell(CellKind::Mux2, &[decoy, t, key], "out");
    nl.add_output("y", out);
    nl
}

#[test]
fn prover_is_identical_for_1_2_4_8_threads_on_keyed_design() {
    let nl = keyed_design();
    let base = run_pdat(&nl, &Environment::Unconstrained, &prover_config(1, 1)).expect("pdat run");
    assert!(base.proved >= 1, "keyed design proves the key invariant");
    assert!(
        base.houdini_stats.shard_stats.len() >= 2,
        "one candidate per shard must yield multiple shards"
    );
    for threads in [2usize, 4, 8] {
        let r = run_pdat(&nl, &Environment::Unconstrained, &prover_config(threads, 1))
            .expect("pdat run");
        assert_prove_identical(&base, &r, &format!("keyed threads={threads}"));
    }
}
