//! Thread-count invariance of the full pipeline: the falsification engine
//! parallelizes over lane blocks whose RNG streams depend only on
//! `(seed, block_index)`, and the per-block kill sets are merged with a
//! commutative union — so the proved invariant set, the transformed
//! netlist, and the falsification counters must be bit-identical no matter
//! how many worker threads run the simulation.

use pdat_repro::cores::build_ibex;
use pdat_repro::isa::RvSubset;
use pdat_repro::{run_pdat, ConstraintMode, Environment, PdatConfig, PdatResult};

fn config_with_threads(threads: usize) -> PdatConfig {
    PdatConfig {
        sim_cycles: 96,
        lane_blocks: 4,
        sim_threads: threads,
        conflict_budget: Some(40_000),
        max_iterations: 1_000,
        seed: 0xD7E2,
        ..Default::default()
    }
}

fn run(threads: usize) -> PdatResult {
    let core = build_ibex();
    let subset = RvSubset::rv32i();
    run_pdat(
        &core.netlist,
        &Environment::Rv {
            subset: &subset,
            ports: vec![core.cut_fetch.clone()],
            mode: ConstraintMode::CutpointBased,
        },
        &config_with_threads(threads),
    ).expect("pdat run")
}

#[test]
fn proved_set_is_identical_for_1_2_4_threads() {
    let r1 = run(1);
    let r2 = run(2);
    let r4 = run(4);
    for (label, r) in [("2", &r2), ("4", &r4)] {
        assert_eq!(
            r1.sim_survivors, r.sim_survivors,
            "threads={label} changed the simulation survivor count"
        );
        assert_eq!(
            r1.sim_stats, r.sim_stats,
            "threads={label} changed the falsification stats"
        );
        assert_eq!(
            r1.proved, r.proved,
            "threads={label} changed the proved invariant count"
        );
        assert_eq!(
            r1.optimized, r.optimized,
            "threads={label} changed the optimized netlist stats"
        );
    }
    // The run must actually have done falsification work for the
    // invariance claim to mean anything.
    assert!(r1.sim_stats.kills > 0, "falsification killed nothing");
    assert_eq!(r1.sim_stats.lane_blocks, 4);
}
