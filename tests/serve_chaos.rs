//! Chaos/soak property test for the PDAT service.
//!
//! For *any* seeded fault schedule (worker panics on pickup, deadline
//! fuses, forced solver unknowns, mid-simulation panics, interrupted
//! checkpoints) and any scheduling seed, every reply out of a
//! [`PdatService`] must be either
//!
//! - `Done` with a proved set bit-identical to the unfaulted cold
//!   oracle of the same request, or
//! - a clean typed error (`Rejected` for the malformed request).
//!
//! Nothing in between: a fault may cost a retry, never change an
//! answer, and never wedge, crash, or corrupt the snapshot on disk.

use pdat_repro::isa::rv32::RvInstr;
use pdat_repro::isa::RvSubset;
use pdat_repro::netlist::{CellKind, NetId, Netlist};
use pdat_repro::{
    load_cache_or_quarantine, run_pdat_cached, save_cache_with_faults, CandidateId,
    ConstraintMode, Environment, FaultPlan, LoadOutcome, OwnedEnvironment, PdatConfig,
    PdatError, PdatService, ProofCache, Reply, ServeConfig, ServeRequest,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Serializes panic-hook swaps: injected worker panics would otherwise
/// spray backtraces over the test log, but the hook is process-global.
fn hook_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Run `f` with the default panic hook silenced.
fn quietly<T>(f: impl FnOnce() -> T) -> T {
    let _guard = hook_lock().lock().unwrap();
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

/// Two exact-pattern detectors + sticky latches on a 32-bit instruction
/// port (a lighter cut of the `cache_soundness` fixture), plus one
/// internal net for building a malformed request.
fn detector_core() -> (Netlist, Vec<NetId>, NetId) {
    let mut nl = Netlist::new("rvdet2");
    let port: Vec<NetId> = (0..32).map(|b| nl.add_input(&format!("i{b}"))).collect();
    let mut internal = port[0];
    for instr in [RvInstr::Add, RvInstr::Jalr] {
        let p = instr.pattern();
        let tag = format!("{instr:?}").to_lowercase();
        let mut acc: Option<NetId> = None;
        for b in 0..32 {
            if p.mask >> b & 1 == 0 {
                continue;
            }
            let bit = if p.value >> b & 1 == 1 {
                port[b]
            } else {
                nl.add_cell(CellKind::Inv, &[port[b]], &format!("{tag}_n{b}"))
            };
            acc = Some(match acc {
                None => bit,
                Some(a) => nl.add_cell(CellKind::And2, &[a, bit], &format!("{tag}_a{b}")),
            });
        }
        let det = acc.expect("pattern has masked bits");
        let fb = nl.add_net(&format!("{tag}_fb"));
        let q = nl.add_dff(fb, false, &format!("{tag}_seen"));
        let sticky = nl.add_cell(CellKind::Or2, &[q, det], &format!("{tag}_sticky"));
        nl.assign_alias(fb, sticky);
        nl.add_output(&format!("saw_{tag}"), sticky);
        internal = sticky;
    }
    (nl, port, internal)
}

fn base_config() -> PdatConfig {
    PdatConfig {
        sim_cycles: 64,
        conflict_budget: Some(40_000),
        max_iterations: 1_000,
        seed: 0xC4A05,
        ..Default::default()
    }
}

fn subsets() -> Vec<RvSubset> {
    let mut no_add = RvSubset::rv32i();
    no_add.instrs.remove(&RvInstr::Add);
    no_add.name = "no-add".to_string();
    let mut no_jalr = RvSubset::rv32i();
    no_jalr.instrs.remove(&RvInstr::Jalr);
    no_jalr.name = "no-jalr".to_string();
    vec![RvSubset::rv32i(), no_add, no_jalr]
}

fn request_for(slot: usize, port: &[NetId]) -> ServeRequest {
    ServeRequest {
        env: OwnedEnvironment::Rv {
            subset: subsets()[slot].clone(),
            ports: vec![port.to_vec()],
            mode: ConstraintMode::PortBased,
        },
        extras: Vec::new(),
    }
}

/// Cold, unfaulted oracle per subset slot — computed once per process.
fn oracles() -> &'static Vec<Vec<CandidateId>> {
    static ORACLES: OnceLock<Vec<Vec<CandidateId>>> = OnceLock::new();
    ORACLES.get_or_init(|| {
        let (nl, port, _) = detector_core();
        subsets()
            .iter()
            .map(|s| {
                let env = Environment::Rv {
                    subset: s,
                    ports: vec![port.to_vec()],
                    mode: ConstraintMode::PortBased,
                };
                run_pdat_cached(&nl, &env, &[], &base_config(), &ProofCache::new())
                    .expect("oracle run")
                    .proved
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For any (fault schedule, scheduling seed): every reply is Done
    /// with the oracle's exact proved set, or the malformed request's
    /// typed rejection. The pool survives whatever the plan injects.
    #[test]
    fn every_reply_is_oracle_exact_or_a_typed_error(
        fault_seed in any::<u64>(),
        sched_seed in any::<u64>(),
    ) {
        let (nl, port, internal) = detector_core();
        let oracle = oracles();
        let plan = FaultPlan::from_seed(fault_seed);
        let replies = quietly(|| {
            let service = PdatService::start(nl, ServeConfig {
                workers: 1 + (sched_seed % 3) as usize,
                queue_depth: 32,
                retry_cap: 2,
                backoff_base: Duration::from_micros(50 + sched_seed % 200),
                seed: sched_seed,
                fault_plan: plan.clone(),
                pdat: base_config(),
                ..Default::default()
            }).expect("service boots");
            let tickets: Vec<_> = (0..8).map(|i| {
                let req = if i == 5 {
                    // Constraint nets that are not free analysis
                    // variables: must answer Rejected, not sink the pool.
                    ServeRequest {
                        env: OwnedEnvironment::Rv {
                            subset: RvSubset::rv32i(),
                            ports: vec![vec![internal; 32]],
                            mode: ConstraintMode::PortBased,
                        },
                        extras: Vec::new(),
                    }
                } else {
                    request_for(i % 3, &port)
                };
                (i, service.submit(req).expect("admission"))
            }).collect();
            let replies: Vec<(usize, Reply)> =
                tickets.into_iter().map(|(i, t)| (i, t.wait())).collect();
            let stats = service.shutdown();
            prop_assert_eq!(stats.admitted, 8);
            prop_assert_eq!(
                stats.replies_done + stats.replies_rejected + stats.replies_exhausted,
                8,
                "every admitted request must be answered"
            );
            Ok(replies)
        })?;
        for (i, reply) in replies {
            match reply {
                Reply::Done(report) => {
                    prop_assert!(i != 5, "the malformed request must not answer Done");
                    prop_assert_eq!(
                        &report.proved, &oracle[i % 3],
                        "fault schedule {:?} changed request {}'s answer", plan, i
                    );
                }
                Reply::Rejected(e) => {
                    prop_assert_eq!(i, 5, "well-formed request {} rejected: {}", i, e);
                    prop_assert!(matches!(e, PdatError::UnboundConstraintNet { .. }));
                }
                other => {
                    // Fault arms are first-attempt-only and retry_cap is
                    // 2, so exhaustion/shutdown would be a liveness bug.
                    return Err(TestCaseError::Fail(format!(
                        "request {i} under {plan:?} answered {other:?}"
                    )));
                }
            }
        }
    }
}

/// Booting over a corrupt snapshot quarantines it (service starts cold
/// and keeps answering), and the next clean shutdown re-persists a
/// loadable snapshot in its place.
#[test]
fn corrupt_snapshot_is_quarantined_and_replaced() {
    let dir = std::env::temp_dir().join(format!("pdat_serve_chaos_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("cache.txt");
    std::fs::write(&path, "pdat-proof-cache v1\nrun zz zz\n").expect("write corrupt file");

    let (nl, port, _) = detector_core();
    let service = PdatService::start(
        nl.clone(),
        ServeConfig {
            cache_path: Some(path.clone()),
            pdat: base_config(),
            ..Default::default()
        },
    )
    .expect("service boots over a corrupt snapshot");
    let boot = service.stats();
    assert!(boot.cache_quarantined, "corrupt snapshot must be quarantined");
    assert_eq!(boot.cache_entries_loaded, 0);
    let mut quarantine = path.clone().into_os_string();
    quarantine.push(".quarantine");
    assert!(
        std::path::Path::new(&quarantine).exists(),
        "the corrupt bytes must be preserved for forensics"
    );

    let t = service.submit(request_for(0, &port)).expect("admission");
    assert!(t.wait().is_done(), "a quarantined boot still serves");
    let stats = service.shutdown();
    assert!(stats.checkpoints_ok >= 1, "shutdown re-persists the cache");

    // The replacement snapshot is loadable and warms the next boot.
    let reboot = PdatService::start(
        nl,
        ServeConfig {
            cache_path: Some(path.clone()),
            pdat: base_config(),
            ..Default::default()
        },
    )
    .expect("reboot");
    assert!(reboot.stats().cache_entries_loaded >= 1);
    drop(reboot);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A save interrupted at every possible write boundary leaves the
/// previous snapshot fully loadable — the service's checkpointer can
/// die mid-save at any point without losing the cache.
#[test]
fn interrupted_checkpoint_never_corrupts_the_snapshot() {
    let dir = std::env::temp_dir().join(format!("pdat_serve_chaos_io_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("cache.txt");

    let (nl, port, _) = detector_core();
    // Populate a one-entry cache through the pipeline and snapshot it.
    let old = ProofCache::new();
    let env0 = Environment::Rv {
        subset: &subsets()[0],
        ports: vec![port.to_vec()],
        mode: ConstraintMode::PortBased,
    };
    run_pdat_cached(&nl, &env0, &[], &base_config(), &old).expect("seed run");
    save_cache_with_faults(&old, &path, None).expect("baseline save");

    // A richer cache whose save we interrupt at every write boundary.
    let new = ProofCache::new();
    for s in subsets() {
        let env = Environment::Rv {
            subset: &s,
            ports: vec![port.to_vec()],
            mode: ConstraintMode::PortBased,
        };
        run_pdat_cached(&nl, &env, &[], &base_config(), &new).expect("grow run");
    }
    assert!(new.len() > old.len());

    for fail_after in 0..10u64 {
        let saved = save_cache_with_faults(&new, &path, Some(fail_after));
        let reloaded = ProofCache::new();
        match load_cache_or_quarantine(&reloaded, &path).expect("load never errors") {
            LoadOutcome::Loaded(n) => {
                if saved.is_ok() {
                    assert_eq!(n, new.len(), "complete save must be visible");
                } else {
                    assert_eq!(n, old.len(), "torn save must leave the old snapshot");
                }
            }
            other => panic!("snapshot corrupted at fail_after={fail_after}: {other:?}"),
        }
        // Re-arm the baseline for the next interruption point if the
        // new snapshot landed.
        if saved.is_ok() {
            save_cache_with_faults(&old, &path, None).expect("re-arm baseline");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
