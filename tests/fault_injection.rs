//! Fault-injection harness for the governed PDAT pipeline.
//!
//! The governor carries a deterministic [`FaultPlan`] that can force SAT
//! queries inconclusive or panic a simulation worker at a chosen (chunk,
//! cycle). For *any* injected fault schedule the pipeline must either
//! return a clean [`PdatError`] or complete with a [`PdatResult`] whose
//! proved set is a subset of the fault-free run's proved set — faults
//! degrade the result, they never corrupt it.

use pdat_repro::netlist::{CellKind, Netlist};
use pdat_repro::{
    run_pdat, Candidate, CandidateKind, Cause, Environment, FaultPlan, PdatConfig,
};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

type CandKey = (pdat_repro::netlist::NetId, CandidateKind);

fn key(c: &Candidate) -> CandKey {
    (c.net, c.kind)
}

/// Serializes panic-hook swaps: injected worker panics would otherwise spray
/// backtraces over the test log, but the hook is process-global state.
fn hook_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Run `f` with the default panic hook silenced.
fn quietly<T>(f: impl FnOnce() -> T) -> T {
    let _guard = hook_lock().lock().unwrap();
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

fn keyed_design() -> Netlist {
    let mut nl = Netlist::new("locked");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let fb = nl.add_net("fb");
    let key = nl.add_dff(fb, true, "key");
    nl.assign_alias(fb, key);
    let t = nl.add_cell(CellKind::And2, &[a, b], "t");
    let decoy = nl.add_cell(CellKind::Xor2, &[a, b], "decoy");
    let out = nl.add_cell(CellKind::Mux2, &[decoy, t, key], "out");
    nl.add_output("y", out);
    nl
}

fn config_with(fault_plan: FaultPlan) -> PdatConfig {
    PdatConfig {
        sim_cycles: 64,
        conflict_budget: Some(40_000),
        max_iterations: 1_000,
        seed: 0xFA17,
        fault_plan,
        ..Default::default()
    }
}

/// The fault-free proved set, computed once. The oracle run must itself be
/// un-degraded so that its proved set is the greatest inductive subset —
/// the reference every faulted run is compared against.
fn oracle() -> &'static HashSet<CandKey> {
    static ORACLE: OnceLock<HashSet<CandKey>> = OnceLock::new();
    ORACLE.get_or_init(|| {
        let res = run_pdat(
            &keyed_design(),
            &Environment::Unconstrained,
            &config_with(FaultPlan::default()),
        )
        .expect("pdat run");
        assert!(res.proved >= 1, "oracle proves the key invariant");
        assert!(res.degradations.is_empty(), "oracle run is fault-free");
        assert!(res.houdini_stats.dropped_by_budget == 0);
        res.proved_invariants.iter().map(key).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any seeded fault schedule: the run completes (no process abort,
    /// no panic escaping the library), and its proved set is a subset of
    /// the fault-free proved set. Faulted runs are also deterministic:
    /// the same plan yields the same result.
    #[test]
    fn any_fault_schedule_degrades_soundly(fault_seed in any::<u64>()) {
        let plan = FaultPlan::from_seed(fault_seed);
        let nl = keyed_design();
        let run = || {
            run_pdat(&nl, &Environment::Unconstrained, &config_with(plan.clone()))
                .expect("valid netlist never yields Err, faults or not")
        };
        let (first, second) = quietly(|| (run(), run()));

        let proved: HashSet<CandKey> = first.proved_invariants.iter().map(key).collect();
        prop_assert!(
            proved.is_subset(oracle()),
            "fault plan {plan:?} invented proofs"
        );
        if !plan.is_empty() && !first.degradations.is_empty() {
            prop_assert!(proved.len() < oracle().len() || first.proved == oracle().len());
        }
        first.netlist.validate().expect("degraded netlist still valid");

        // Determinism: FaultPlan cuts are data-driven, not time-driven.
        let reproved: HashSet<CandKey> = second.proved_invariants.iter().map(key).collect();
        prop_assert_eq!(&proved, &reproved);
        prop_assert_eq!(&first.degradations, &second.degradations);
        prop_assert_eq!(first.sim_survivors, second.sim_survivors);
    }
}

#[test]
fn panicking_sim_worker_does_not_abort_the_process() {
    let plan = FaultPlan {
        sim_panic_at: Some((0, 0)),
        ..Default::default()
    };
    let res = quietly(|| {
        run_pdat(
            &keyed_design(),
            &Environment::Unconstrained,
            &config_with(plan),
        )
        .expect("pdat run")
    });
    assert!(
        res.degradations
            .iter()
            .any(|e| e.cause == Cause::WorkerPanic),
        "the isolated panic must be reported: {:?}",
        res.degradations
    );
    res.netlist.validate().expect("degraded netlist valid");
    // The panicked chunk dropped its candidates; other chunks may still
    // falsify, but nothing unvetted reaches the prover.
    let proved: HashSet<CandKey> = res.proved_invariants.iter().map(key).collect();
    assert!(proved.is_subset(oracle()));
}

#[test]
fn deadline_in_the_past_returns_partial_result() {
    let cfg = PdatConfig {
        deadline: Some(Duration::ZERO),
        ..config_with(FaultPlan::default())
    };
    let res = run_pdat(&keyed_design(), &Environment::Unconstrained, &cfg).expect("pdat run");
    assert_eq!(res.proved, 0, "nothing can be vetted with no time at all");
    assert!(
        res.degradations.iter().any(|e| e.cause == Cause::Deadline),
        "the deadline cut must be recorded: {:?}",
        res.degradations
    );
    res.netlist.validate().expect("degraded netlist valid");
}

#[test]
fn solver_fault_reports_conflict_budget_cause() {
    let plan = FaultPlan {
        solver_unknown_after_conflicts: Some(0),
        ..Default::default()
    };
    let res = quietly(|| {
        run_pdat(
            &keyed_design(),
            &Environment::Unconstrained,
            &config_with(plan),
        )
        .expect("pdat run")
    });
    assert_eq!(res.proved, 0);
    assert!(
        res.degradations
            .iter()
            .any(|e| e.cause == Cause::ConflictBudget),
        "forced solver exhaustion must be recorded: {:?}",
        res.degradations
    );
}

#[test]
fn invalid_netlist_is_a_clean_error() {
    // An undriven internal net fails validation up front.
    let mut nl = Netlist::new("broken");
    let a = nl.add_input("a");
    let dangling = nl.add_net("dangling");
    let y = nl.add_cell(CellKind::And2, &[a, dangling], "y");
    nl.add_output("y", y);
    let err = run_pdat(
        &nl,
        &Environment::Unconstrained,
        &config_with(FaultPlan::default()),
    )
    .expect_err("undriven net must be rejected");
    assert!(err.to_string().contains("invalid netlist"), "got: {err}");
}
